//! Per-relation degree/skew statistics, maintained alongside the data.
//!
//! The source paper's central lever over cardinality-only (AGM/GLVV) bounds
//! is *degree* information: how many tuples share a prefix, how many
//! distinct extensions a prefix has. [`RelationStats`] measures exactly
//! those quantities on the stored data, per prefix length of the relation's
//! sort order (the trie depths the execution engines actually navigate):
//!
//! - `distinct_prefixes(len)` — distinct length-`len` prefixes (trie nodes
//!   at depth `len`);
//! - `max_degree(len)` / `avg_degree(len)` — rows per distinct prefix, the
//!   measured analogue of a declared degree bound;
//! - `max_branch(from)` / `avg_branch(from)` — distinct `(from+1)`-prefixes
//!   per `from`-prefix, i.e. the trie fan-out at depth `from`: the branch
//!   counts a join's variable-binding loop will actually see;
//! - `skew(len)` — `max_degree / avg_degree`, 1.0 for perfectly uniform
//!   data; the indicator `fdjoin_core::cost` uses for data-dependent
//!   planning tie-breaks.
//!
//! Statistics are *exact*, not sampled, and are kept current by the storage
//! layer itself: [`Relation::sort_dedup`](crate::Relation::sort_dedup)
//! accumulates them while deduplicating, and
//! [`Relation::apply_delta`](crate::Relation::apply_delta) re-accumulates
//! them inside the same linear merge walk that applies the delta — no extra
//! pass over the data, and no drift between deltas and statistics (the
//! differential property tests in `tests/proptest_stats.rs` assert
//! exactness under random insert/delete sequences).

use crate::Value;

/// Exact degree/skew statistics of one sorted, deduplicated relation.
///
/// All quantities are per *prefix length* in the relation's column (sort)
/// order — the orders the engines bind variables in. Lengths are `1..=arity`
/// for degree/distinct queries and `0..arity` for branch queries (branching
/// *from* a depth).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelationStats {
    cardinality: u64,
    /// `distinct[k]` = number of distinct `(k+1)`-prefixes.
    distinct: Vec<u64>,
    /// `max_degree[k]` = max rows sharing one `(k+1)`-prefix.
    max_degree: Vec<u64>,
    /// `max_branch[k]` = max distinct `(k+1)`-prefixes within one
    /// `k`-prefix group (`k = 0` means the whole relation).
    max_branch: Vec<u64>,
}

impl RelationStats {
    /// Compute from scratch over a sorted + deduplicated relation. This is
    /// the reference implementation the incremental maintenance in
    /// [`Relation::apply_delta`](crate::Relation::apply_delta) is tested
    /// against; normal callers read
    /// [`Relation::stats`](crate::Relation::stats) instead.
    ///
    /// # Panics
    ///
    /// Panics if the relation is not sorted ([`Relation::is_sorted`]).
    ///
    /// [`Relation::is_sorted`]: crate::Relation::is_sorted
    pub fn of(rel: &crate::Relation) -> RelationStats {
        assert!(
            rel.is_sorted(),
            "RelationStats::of requires a sorted relation"
        );
        let mut acc = StatsAcc::new(rel.arity());
        for row in rel.rows() {
            acc.push(row);
        }
        acc.finish()
    }

    /// Number of rows.
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Arity of the relation these statistics describe.
    pub fn arity(&self) -> usize {
        self.distinct.len()
    }

    /// Number of distinct prefixes of length `len` (`0 ≤ len ≤ arity`).
    /// `len == 0` is the root: 1 for a non-empty relation, else 0.
    pub fn distinct_prefixes(&self, len: usize) -> u64 {
        if len == 0 {
            return (self.cardinality > 0) as u64;
        }
        self.distinct[len - 1]
    }

    /// Maximum number of rows sharing one prefix of length `len`
    /// (`0 ≤ len ≤ arity`; `len == 0` is the whole relation).
    pub fn max_degree(&self, len: usize) -> u64 {
        if len == 0 {
            return self.cardinality;
        }
        self.max_degree[len - 1]
    }

    /// Mean number of rows per distinct prefix of length `len`
    /// (`cardinality / distinct`); 0.0 for an empty relation.
    pub fn avg_degree(&self, len: usize) -> f64 {
        let d = self.distinct_prefixes(len);
        if d == 0 {
            0.0
        } else {
            self.cardinality as f64 / d as f64
        }
    }

    /// Maximum trie fan-out from depth `from` to depth `from + 1`
    /// (`0 ≤ from < arity`): the largest number of distinct
    /// `(from+1)`-prefixes below one `from`-prefix.
    pub fn max_branch(&self, from: usize) -> u64 {
        self.max_branch[from]
    }

    /// Mean trie fan-out from depth `from`
    /// (`distinct(from+1) / distinct(from)`); 0.0 for an empty relation.
    pub fn avg_branch(&self, from: usize) -> f64 {
        let d = self.distinct_prefixes(from);
        if d == 0 {
            0.0
        } else {
            self.distinct_prefixes(from + 1) as f64 / d as f64
        }
    }

    /// Skew of the degree distribution at prefix length `len`:
    /// `max_degree / avg_degree`. 1.0 means perfectly uniform (every prefix
    /// has the same number of rows); large values mean a few heavy prefixes
    /// dominate. Returns 1.0 for empty relations and `len == 0`.
    pub fn skew(&self, len: usize) -> f64 {
        let avg = self.avg_degree(len);
        if avg == 0.0 {
            1.0
        } else {
            self.max_degree(len) as f64 / avg
        }
    }

    /// The worst skew over all proper prefix lengths (`1..arity`); 1.0 for
    /// relations of arity ≤ 1 or empty relations.
    pub fn max_skew(&self) -> f64 {
        (1..self.arity())
            .map(|len| self.skew(len))
            .fold(1.0, f64::max)
    }
}

/// Streaming accumulator: feed rows in strictly increasing order (sorted,
/// deduplicated) and `finish`. Used by `Relation::sort_dedup`'s dedup loop
/// and fused into `Relation::apply_delta`'s merge walk, so statistics ride
/// the passes the storage layer already makes.
#[derive(Debug)]
pub(crate) struct StatsAcc {
    arity: usize,
    n: u64,
    last: Vec<Value>,
    /// Rows in the currently open `(k+1)`-prefix group.
    run: Vec<u64>,
    /// Distinct `(k+1)`-prefixes in the currently open `k`-prefix group.
    kids: Vec<u64>,
    distinct: Vec<u64>,
    max_degree: Vec<u64>,
    max_branch: Vec<u64>,
}

impl StatsAcc {
    pub(crate) fn new(arity: usize) -> StatsAcc {
        StatsAcc {
            arity,
            n: 0,
            last: Vec::with_capacity(arity),
            run: vec![0; arity],
            kids: vec![0; arity],
            distinct: vec![0; arity],
            max_degree: vec![0; arity],
            max_branch: vec![0; arity],
        }
    }

    pub(crate) fn push(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity);
        let a = self.arity;
        if self.n == 0 {
            self.last.clear();
            self.last.extend_from_slice(row);
            for k in 0..a {
                self.run[k] = 1;
                self.kids[k] = 1;
                self.distinct[k] = 1;
            }
            self.n = 1;
            return;
        }
        // First column where this row departs from the previous one; rows
        // arrive strictly increasing, so for arity > 0 some column differs.
        let d = self
            .last
            .iter()
            .zip(row)
            .position(|(a, b)| a != b)
            .unwrap_or(a);
        debug_assert!(a == 0 || d < a, "rows must be strictly increasing");
        for k in 0..a {
            // The (k+1)-prefix changed iff the first difference is inside it.
            if d < k + 1 {
                self.distinct[k] += 1;
                self.max_degree[k] = self.max_degree[k].max(self.run[k]);
                self.run[k] = 1;
            } else {
                self.run[k] += 1;
            }
            if d < k + 1 {
                if d < k {
                    // The enclosing k-prefix group also closed.
                    self.max_branch[k] = self.max_branch[k].max(self.kids[k]);
                    self.kids[k] = 1;
                } else {
                    self.kids[k] += 1;
                }
            }
        }
        self.last.clear();
        self.last.extend_from_slice(row);
        self.n += 1;
    }

    pub(crate) fn finish(mut self) -> RelationStats {
        if self.n > 0 {
            for k in 0..self.arity {
                self.max_degree[k] = self.max_degree[k].max(self.run[k]);
                self.max_branch[k] = self.max_branch[k].max(self.kids[k]);
            }
        }
        RelationStats {
            cardinality: self.n,
            distinct: self.distinct,
            max_degree: self.max_degree,
            max_branch: self.max_branch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    fn rel() -> Relation {
        let mut r = Relation::from_rows(
            vec![0, 1, 2],
            [
                [1, 10, 100],
                [1, 10, 101],
                [1, 11, 100],
                [2, 10, 100],
                [2, 10, 100], // dup
                [3, 30, 300],
            ],
        );
        r.sort_dedup();
        r
    }

    #[test]
    fn scratch_matches_relation_counters() {
        let r = rel();
        let s = RelationStats::of(&r);
        assert_eq!(s.cardinality(), 5);
        for len in 0..=3 {
            assert_eq!(s.distinct_prefixes(len), r.distinct_prefixes(len) as u64);
            assert_eq!(s.max_degree(len), r.max_degree(len) as u64);
        }
    }

    #[test]
    fn branch_counts() {
        let r = rel();
        let s = RelationStats::of(&r);
        // Depth 0 → 1: values {1, 2, 3}.
        assert_eq!(s.max_branch(0), 3);
        // Depth 1 → 2: x=1 has {10, 11}.
        assert_eq!(s.max_branch(1), 2);
        // Depth 2 → 3: (1,10) has {100, 101}.
        assert_eq!(s.max_branch(2), 2);
        assert!((s.avg_branch(0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn skew_of_uniform_is_one() {
        let mut r = Relation::from_rows(vec![0, 1], [[1, 1], [1, 2], [2, 1], [2, 2]]);
        r.sort_dedup();
        let s = r.stats().unwrap();
        assert_eq!(s.skew(1), 1.0);
        assert_eq!(s.max_skew(), 1.0);
    }

    #[test]
    fn skew_detects_heavy_hitters() {
        // x=1 has 9 rows, x=2..=4 have 1 each: max 9, avg 3 → skew 3.
        let rows: Vec<[u64; 2]> = (0..9)
            .map(|i| [1, i])
            .chain([[2, 0], [3, 0], [4, 0]])
            .collect();
        let mut r = Relation::from_rows(vec![0, 1], rows);
        r.sort_dedup();
        let s = r.stats().unwrap();
        assert_eq!(s.max_degree(1), 9);
        assert!((s.skew(1) - 3.0).abs() < 1e-9);
        assert!((s.max_skew() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_nullary() {
        let mut empty = Relation::new(vec![0, 1]);
        empty.sort_dedup();
        let s = empty.stats().unwrap();
        assert_eq!(s.cardinality(), 0);
        assert_eq!(s.distinct_prefixes(0), 0);
        assert_eq!(s.max_degree(2), 0);
        assert_eq!(s.skew(1), 1.0);

        let unit = Relation::nullary_unit();
        let s = unit.stats().unwrap();
        assert_eq!(s.cardinality(), 1);
        assert_eq!(s.arity(), 0);
        assert_eq!(s.max_skew(), 1.0);
    }
}
