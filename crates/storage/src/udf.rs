//! User-defined functions backing unguarded functional dependencies.
//!
//! The paper (Sec. 1.1) models a UDF `u = f(x, z)` as an infinite relation
//! `F(x, z, u)` with FD `xz → u`, accessible only by binding the inputs.
//! From Sec. 5.1 on, the algorithms "have access to the UDFs that defined
//! the unguarded FDs"; the registry below is that access path.

use crate::Value;
use fdjoin_lattice::VarSet;
use std::collections::HashMap;
use std::sync::Arc;

/// A user-defined function: receives the argument values ordered by
/// ascending variable id and returns the output value.
pub type UdfFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// Registry of UDFs keyed by `(argument variables, output variable)`.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    map: HashMap<(VarSet, u32), UdfFn>,
    version: u64,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Register `out = f(args)`. `args` values are passed to `f` ordered by
    /// ascending variable id.
    pub fn register<F>(&mut self, args: VarSet, out: u32, f: F)
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        self.map.insert((args, out), Arc::new(f));
        self.version = crate::relation::next_version();
    }

    /// Registry version: a globally unique stamp refreshed on every
    /// [`UdfRegistry::register`], with the same clone-shares-until-mutated
    /// semantics as [`crate::Relation::version`]. Derivations whose output
    /// depends on UDFs (FD expansion) fold it into their cache signatures.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Look up a UDF.
    pub fn get(&self, args: VarSet, out: u32) -> Option<&UdfFn> {
        self.map.get(&(args, out))
    }

    /// Find any registered UDF whose arguments are a subset of `available`
    /// and whose output is `out`; returns the argument set and function.
    pub fn find_applicable(&self, available: VarSet, out: u32) -> Option<(VarSet, &UdfFn)> {
        self.map
            .iter()
            .find(|((args, o), _)| *o == out && args.is_subset(available))
            .map(|((args, _), f)| (*args, f))
    }

    /// Evaluate `out = f(args)` for a tuple given as `(var, value)` pairs
    /// covering at least `args`.
    pub fn eval(&self, args: VarSet, out: u32, bindings: &[(u32, Value)]) -> Option<Value> {
        let f = self.get(args, out)?;
        let mut argv: Vec<Value> = Vec::with_capacity(args.len() as usize);
        for v in args.iter() {
            let (_, val) = bindings.iter().find(|(w, _)| *w == v)?;
            argv.push(*val);
        }
        Some(f(&argv))
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UdfRegistry({} fns)", self.map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_eval() {
        let mut reg = UdfRegistry::new();
        let args = VarSet::from_vars([0, 2]);
        reg.register(args, 3, |v| v[0] + v[1]);
        let out = reg.eval(args, 3, &[(2, 10), (0, 1)]);
        assert_eq!(out, Some(11));
        assert!(reg.eval(args, 4, &[(0, 1), (2, 10)]).is_none());
    }

    #[test]
    fn arg_order_is_by_variable_id() {
        let mut reg = UdfRegistry::new();
        let args = VarSet::from_vars([5, 1]);
        reg.register(args, 7, |v| v[0] * 100 + v[1]);
        // var 1 comes first regardless of binding order.
        let out = reg.eval(args, 7, &[(5, 2), (1, 3)]);
        assert_eq!(out, Some(302));
    }

    #[test]
    fn find_applicable_respects_subset() {
        let mut reg = UdfRegistry::new();
        let args = VarSet::from_vars([0, 1]);
        reg.register(args, 2, |v| v[0] ^ v[1]);
        assert!(reg
            .find_applicable(VarSet::from_vars([0, 1, 3]), 2)
            .is_some());
        assert!(reg.find_applicable(VarSet::from_vars([0, 3]), 2).is_none());
        assert!(reg.find_applicable(VarSet::from_vars([0, 1]), 5).is_none());
    }
}
