//! Property tests for the access-path layer: `TrieIndex`/`Probe` answers
//! must agree with the seed-era primitives (`Relation::project` +
//! `Relation::prefix_range`) on random relations and column orders, and the
//! `IndexSet` cache must be transparent (a hit returns exactly what a fresh
//! build would).

use fdjoin_storage::{IndexSet, Relation, TrieIndex, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn rows_strategy(arity: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..6, arity), 0..40)
}

/// All 15 nonempty ordered projections of a 3-column schema would be a lot;
/// pick the order by an index into a fixed enumeration.
fn orders() -> Vec<Vec<u32>> {
    vec![
        vec![0, 1, 2],
        vec![0, 2, 1],
        vec![1, 0, 2],
        vec![1, 2, 0],
        vec![2, 0, 1],
        vec![2, 1, 0],
        vec![0],
        vec![1],
        vec![2],
        vec![0, 1],
        vec![1, 0],
        vec![0, 2],
        vec![2, 0],
        vec![1, 2],
        vec![2, 1],
    ]
}

proptest! {
    #[test]
    fn trie_index_equals_projection(rows in rows_strategy(3), oi in 0usize..15) {
        let order = orders()[oi].clone();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let ix = TrieIndex::build(&rel, &order);
        let proj = rel.project(&order);
        prop_assert_eq!(ix.len(), proj.len());
        for i in 0..ix.len() {
            prop_assert_eq!(ix.row(i), proj.row(i));
        }
        prop_assert_eq!(&ix.to_relation(), &proj);
        // Group structure agrees at every depth.
        for d in 0..=order.len() {
            prop_assert_eq!(ix.group_ranges(d), proj.group_ranges(d));
        }
    }

    #[test]
    fn probe_ranges_equal_prefix_range(
        rows in rows_strategy(3),
        oi in 0usize..15,
        key in proptest::collection::vec(0u64..6, 0..3),
    ) {
        let order = orders()[oi].clone();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let ix = TrieIndex::build(&rel, &order);
        let proj = rel.project(&order);
        let key = &key[..key.len().min(order.len())];
        let (a, b) = (ix.prefix_range(key), proj.prefix_range(key));
        prop_assert_eq!(a.len(), b.len(), "prefix {:?}", key);
        for (i, j) in a.zip(b) {
            prop_assert_eq!(ix.row(i), proj.row(j));
        }
        // Membership for full rows.
        if key.len() == order.len() {
            prop_assert_eq!(ix.contains(key), proj.contains_row(key));
        }
    }

    #[test]
    fn probe_seek_walks_distinct_values(rows in rows_strategy(2), oi in 9usize..15) {
        let order = orders()[oi].clone();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows.iter().map(|r| {
            let mut r = r.clone();
            r.push(0);
            r
        }));
        rel.sort_dedup();
        let ix = TrieIndex::build(&rel, &order);
        // Walking next_value() visits exactly the distinct level-0 values.
        let expect: BTreeSet<Value> = (0..ix.len()).map(|i| ix.row(i)[0]).collect();
        let mut walked = Vec::new();
        let mut p = ix.probe();
        let mut cur = p.current();
        while let Some(v) = cur {
            walked.push(v);
            cur = p.next_value();
        }
        prop_assert_eq!(walked.clone(), expect.iter().copied().collect::<Vec<_>>());
        // seek(v) from the root lands on the first distinct value ≥ v.
        for target in 0u64..7 {
            let mut p = ix.probe();
            let got = p.seek(target);
            let expect = walked.iter().copied().find(|&v| v >= target);
            prop_assert_eq!(got, expect, "seek({})", target);
        }
        // enter() restricts to exactly the rows carrying the value.
        let mut p = ix.probe();
        while let Some(v) = p.current() {
            let child = p.enter();
            let direct = ix.prefix_range(&[v]);
            prop_assert_eq!(child.range(), direct);
            if p.next_value().is_none() {
                break;
            }
        }
    }

    #[test]
    fn relation_probe_equals_contains(rows in rows_strategy(3), probe_row in proptest::collection::vec(0u64..6, 3)) {
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows.clone());
        rel.sort_dedup();
        let model: BTreeSet<Vec<Value>> = rows.iter().cloned().collect();
        prop_assert_eq!(rel.contains_row(&probe_row), model.contains(&probe_row));
        let mut p = rel.probe();
        prop_assert_eq!(
            probe_row.iter().all(|&v| p.descend(v)),
            model.contains(&probe_row)
        );
    }

    #[test]
    fn index_set_hits_are_transparent(rows in rows_strategy(3), oi in 0usize..15) {
        let order = orders()[oi].clone();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let set = IndexSet::new();
        let (built_ix, built) = set.index_of("R", &rel, &order);
        prop_assert!(built);
        let (hit_ix, built2) = set.index_of("R", &rel, &order);
        prop_assert!(!built2);
        prop_assert_eq!(&*built_ix, &*hit_ix);
        prop_assert_eq!(&*hit_ix, &TrieIndex::build(&rel, &order));
        // A clone shares the version — and therefore the cache entry.
        let clone = rel.clone();
        let (_, built3) = set.index_of("R", &clone, &order);
        prop_assert!(!built3, "clone shares the content version");
        // Mutation diverges the version: the clone now misses.
        let mut mutated = clone.clone();
        mutated.apply_delta([[9u64, 9, 9]], [] as [&[Value]; 0]);
        let (mutated_ix, built4) = set.index_of("R", &mutated, &order);
        prop_assert!(built4, "new content version must rebuild");
        prop_assert_eq!(&*mutated_ix, &TrieIndex::build(&mutated, &order));
    }
}

/// One cursor operation of the differential suite: applied in lockstep to
/// a columnar-trie probe and to a flat-projection probe over identical
/// content, after which every observable (depth, current value, row range,
/// group) must agree.
#[derive(Debug, Clone)]
enum Op {
    Descend(Value),
    Seek(Value),
    NextValue,
    Enter,
    SnapshotResume,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..6, 0u64..7).prop_map(|(k, v)| match k {
        0 | 1 => Op::Descend(v % 6),
        2 => Op::Seek(v),
        3 => Op::NextValue,
        4 => Op::Enter,
        _ => Op::SnapshotResume,
    })
}

proptest! {
    /// Differential suite: the columnar level-trie probe and the seed-era
    /// flat sorted-projection probe answer every cursor-op sequence
    /// identically — same descend/seek outcomes, same visited values, same
    /// row-coordinate ranges and groups. The projection's rows coincide
    /// with the index's rows, so row ranges are directly comparable.
    #[test]
    fn probe_ops_match_flat_projection(
        rows in rows_strategy(3),
        oi in 0usize..15,
        ops in proptest::collection::vec(op_strategy(), 0..24),
    ) {
        let order = orders()[oi].clone();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let ix = TrieIndex::build(&rel, &order);
        let proj = rel.project(&order);
        let mut t = ix.probe();
        let mut f = proj.probe();
        for op in ops {
            match op {
                Op::Descend(v) => {
                    if t.depth() >= order.len() {
                        continue;
                    }
                    prop_assert_eq!(t.descend(v), f.descend(v), "descend({})", v);
                }
                Op::Seek(v) => {
                    if t.depth() >= order.len() {
                        continue;
                    }
                    prop_assert_eq!(t.seek(v), f.seek(v), "seek({})", v);
                }
                Op::NextValue => {
                    if t.depth() >= order.len() {
                        continue;
                    }
                    prop_assert_eq!(t.next_value(), f.next_value());
                }
                Op::Enter => {
                    // Entering an exhausted level puts the two layouts'
                    // empty children at incomparable positions; only a
                    // live current value has a well-defined subtrie.
                    if t.current().is_none() {
                        continue;
                    }
                    t = t.enter();
                    f = f.enter();
                }
                Op::SnapshotResume => {
                    t = ix.resume(t.snapshot());
                }
            }
            prop_assert_eq!(t.depth(), f.depth());
            prop_assert_eq!(t.current(), f.current());
            prop_assert_eq!(t.range(), f.range(), "row ranges diverge");
            prop_assert_eq!(t.len(), f.len());
            prop_assert_eq!(t.group(), f.group(), "groups diverge");
        }
    }

    /// Snapshot/resume round-trips at random depths: the snapshot's
    /// node-coordinate fields reattach to an equivalent live cursor —
    /// same depth, same row range, same remaining value walk.
    #[test]
    fn snapshot_resume_at_random_depths(
        rows in rows_strategy(3),
        oi in 0usize..6,
        prefix in proptest::collection::vec(0u64..6, 0..3),
    ) {
        let order = orders()[oi].clone();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let ix = TrieIndex::build(&rel, &order);
        let mut p = ix.probe();
        for &v in &prefix {
            if !p.descend(v) {
                break;
            }
        }
        let snap = p.snapshot();
        prop_assert_eq!(snap.depth, p.depth());
        let mut resumed = ix.resume(snap);
        prop_assert_eq!(resumed.depth(), p.depth());
        prop_assert_eq!(resumed.range(), p.range());
        prop_assert_eq!(resumed.current(), p.current());
        let mut live = p;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        while let Some(v) = live.current() {
            a.push(v);
            if live.next_value().is_none() {
                break;
            }
        }
        while let Some(v) = resumed.current() {
            b.push(v);
            if resumed.next_value().is_none() {
                break;
            }
        }
        prop_assert_eq!(a, b, "resumed cursor walks the same values");
    }

    /// The lending row walker reproduces the projection exactly, over the
    /// full index and over arbitrary subranges.
    #[test]
    fn row_walk_matches_projection(
        rows in rows_strategy(3),
        oi in 0usize..15,
        cut in 0usize..40,
    ) {
        let order = orders()[oi].clone();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let ix = TrieIndex::build(&rel, &order);
        let proj = rel.project(&order);
        let mut w = ix.walk_all();
        let mut i = 0;
        while let Some(row) = w.next() {
            prop_assert_eq!(row, proj.row(i));
            i += 1;
        }
        prop_assert_eq!(i, proj.len());
        let start = cut.min(ix.len());
        let mut w = ix.walk(start..ix.len());
        let mut i = start;
        while let Some(row) = w.next() {
            prop_assert_eq!(row, proj.row(i));
            i += 1;
        }
        prop_assert_eq!(i, ix.len());
    }
}
