//! Model-based property tests: `Relation` operations against a
//! `BTreeSet<Vec<Value>>` reference model.

use fdjoin_storage::{HashIndex, Relation, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn rows_strategy(arity: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..6, arity), 0..40)
}

proptest! {
    #[test]
    fn sort_dedup_matches_set_model(rows in rows_strategy(3)) {
        let model: BTreeSet<Vec<Value>> = rows.iter().cloned().collect();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        prop_assert_eq!(rel.len(), model.len());
        for (row, expect) in rel.rows().zip(model.iter()) {
            prop_assert_eq!(row, expect.as_slice());
        }
    }

    #[test]
    fn prefix_range_counts_match_model(rows in rows_strategy(3), p0 in 0u64..6, p1 in 0u64..6) {
        let model: BTreeSet<Vec<Value>> = rows.iter().cloned().collect();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let c1 = model.iter().filter(|r| r[0] == p0).count();
        prop_assert_eq!(rel.prefix_count(&[p0]), c1);
        let c2 = model.iter().filter(|r| r[0] == p0 && r[1] == p1).count();
        prop_assert_eq!(rel.prefix_count(&[p0, p1]), c2);
        // Ranges really contain exactly the matching rows.
        for i in rel.prefix_range(&[p0]) {
            prop_assert_eq!(rel.row(i)[0], p0);
        }
    }

    #[test]
    fn projection_matches_model(rows in rows_strategy(3)) {
        let model: BTreeSet<Vec<Value>> = rows.iter().cloned().collect();
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let proj = rel.project(&[2, 0]);
        let expect: BTreeSet<Vec<Value>> =
            model.iter().map(|r| vec![r[2], r[0]]).collect();
        prop_assert_eq!(proj.len(), expect.len());
        for row in proj.rows() {
            prop_assert!(expect.contains(row));
        }
    }

    #[test]
    fn semijoin_matches_model(left in rows_strategy(2), right in rows_strategy(2)) {
        // Shared variable: 1 (left vars [0,1], right vars [1,5]).
        let mut l = Relation::from_rows(vec![0, 1], left.clone());
        l.sort_dedup();
        let mut r = Relation::from_rows(vec![1, 5], right.clone());
        r.sort_dedup();
        let result = l.semijoin(&r);
        let keys: BTreeSet<Value> = right.iter().map(|t| t[0]).collect();
        let expect: BTreeSet<Vec<Value>> = left
            .iter()
            .filter(|t| keys.contains(&t[1]))
            .cloned()
            .collect();
        prop_assert_eq!(result.len(), expect.len());
        for row in result.rows() {
            prop_assert!(expect.contains(row));
        }
    }

    #[test]
    fn degrees_match_model(rows in rows_strategy(2)) {
        let model: BTreeSet<Vec<Value>> = rows.iter().cloned().collect();
        let mut rel = Relation::from_rows(vec![0, 1], rows);
        rel.sort_dedup();
        let mut by_key: std::collections::HashMap<Value, usize> = Default::default();
        for r in &model {
            *by_key.entry(r[0]).or_default() += 1;
        }
        let expect_max = by_key.values().copied().max().unwrap_or(0);
        prop_assert_eq!(rel.max_degree(1), expect_max);
        prop_assert_eq!(rel.distinct_prefixes(1), by_key.len());
        // Group ranges partition the row indices.
        let groups = rel.group_ranges(1);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(total, rel.len());
    }

    #[test]
    fn hash_index_agrees_with_scan(rows in rows_strategy(3), key in 0u64..6) {
        let mut rel = Relation::from_rows(vec![0, 1, 2], rows);
        rel.sort_dedup();
        let ix = HashIndex::build(&rel, &[1]);
        let via_index = ix.get(&[key]).len();
        let via_scan = rel.rows().filter(|r| r[1] == key).count();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn select_rows_preserves_membership(rows in rows_strategy(2)) {
        let mut rel = Relation::from_rows(vec![0, 1], rows);
        rel.sort_dedup();
        let half: Vec<usize> = (0..rel.len()).step_by(2).collect();
        let sel = rel.select_rows(half.iter().copied());
        for row in sel.rows() {
            prop_assert!(rel.contains_row(row));
        }
        prop_assert_eq!(sel.len(), half.len());
    }
}
