//! Differential testing of the statistics layer: the `RelationStats`
//! maintained incrementally through `apply_delta`'s merge walk must stay
//! *exactly* equal to a from-scratch recomputation — and to brute-force
//! counts over the rows — under arbitrary random insert/delete sequences.

use fdjoin_storage::{Relation, RelationStats, Value};
use proptest::prelude::*;

fn rows_strategy(arity: usize, max: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..5, arity), 0..max)
}

/// Brute-force statistics straight off the `Relation` group primitives.
fn brute_check(rel: &Relation, stats: &RelationStats) {
    let a = rel.arity();
    assert_eq!(stats.cardinality(), rel.len() as u64);
    assert_eq!(stats.arity(), a);
    for len in 0..=a {
        assert_eq!(
            stats.distinct_prefixes(len),
            if len == 0 {
                (!rel.is_empty()) as u64
            } else {
                rel.distinct_prefixes(len) as u64
            },
            "distinct prefixes of length {len}"
        );
        assert_eq!(
            stats.max_degree(len),
            rel.max_degree(len) as u64,
            "max degree at prefix length {len}"
        );
    }
    for from in 0..a {
        // Brute-force fan-out: within each `from`-prefix group, count the
        // distinct `(from+1)`-prefixes.
        let expect = rel
            .group_ranges(from)
            .into_iter()
            .map(|g| {
                let mut kids = 0u64;
                let mut last: Option<&[Value]> = None;
                for i in g {
                    let child = &rel.row(i)[..from + 1];
                    if last != Some(child) {
                        kids += 1;
                    }
                    last = Some(child);
                }
                kids
            })
            .max()
            .unwrap_or(0);
        assert_eq!(
            stats.max_branch(from),
            expect,
            "max branch from depth {from}"
        );
    }
}

proptest! {
    #[test]
    fn stats_stay_exact_under_delta_sequences(
        initial in rows_strategy(3, 40),
        deltas in proptest::collection::vec(
            (rows_strategy(3, 8), rows_strategy(3, 8)),
            1..8,
        ),
    ) {
        let mut rel = Relation::from_rows(vec![0, 1, 2], initial);
        rel.sort_dedup();
        for (inserts, deletes) in deltas {
            rel.apply_delta(inserts, deletes);
            let maintained = rel.stats().expect("sorted after apply_delta").clone();
            // Differential 1: from-scratch accumulation over the same rows.
            prop_assert_eq!(&maintained, &RelationStats::of(&rel));
            // Differential 2: a rebuilt relation (fresh sort path).
            let rebuilt = {
                let mut r = Relation::new(vec![0, 1, 2]);
                for row in rel.rows() {
                    r.push_row(row);
                }
                r.sort_dedup();
                r
            };
            prop_assert_eq!(&maintained, rebuilt.stats().unwrap());
            // Differential 3: brute-force counts off the group primitives.
            brute_check(&rel, &maintained);
        }
    }

    #[test]
    fn sort_path_and_delta_path_agree(rows in rows_strategy(2, 30)) {
        // Loading rows via push_row + sort_dedup and via apply_delta
        // inserts must produce identical statistics.
        let mut sorted = Relation::from_rows(vec![0, 1], rows.clone());
        sorted.sort_dedup();
        let mut delta = Relation::new(vec![0, 1]);
        let none: [&[Value]; 0] = [];
        delta.apply_delta(rows, none);
        prop_assert_eq!(sorted.stats().unwrap(), delta.stats().unwrap());
        prop_assert_eq!(&sorted, &delta);
    }

    #[test]
    fn skew_bounds_hold(rows in rows_strategy(2, 30)) {
        let mut rel = Relation::from_rows(vec![0, 1], rows);
        rel.sort_dedup();
        let s = rel.stats().unwrap();
        // Skew is ≥ 1 by definition (max ≥ avg) and max_degree ≤ n.
        prop_assert!(s.max_skew() >= 1.0 - 1e-9);
        for len in 1..=2usize {
            prop_assert!(s.max_degree(len) <= s.cardinality());
            prop_assert!(s.skew(len) >= 1.0 - 1e-9);
        }
    }
}
