//! Cursor-based result streaming: enumerate join answers one tuple at a
//! time, on demand, without ever materializing the full output.
//!
//! Every materializing execution in `fdjoin_core` runs the same shape of
//! computation — a Generic-Join-style descent over the shared trie access
//! paths (`fdjoin_storage::TrieIndex` + [`Probe`](fdjoin_storage::Probe)
//! cursors), FD-expanding and verifying each full binding. [`ResultStream`]
//! is that descent turned inside out: instead of a recursive search pushing
//! rows into a `Relation`, the cursor levels of the search live *in the
//! stream* as plain-data [`ProbeSnapshot`]s, and every
//! [`ResultStream::next_row`] call resumes the descent exactly where the
//! previous row suspended it. Between calls the stream holds no borrows of
//! its indexes' interiors — only `(depth, lo, hi)` positions — so it can be
//! paused indefinitely, shipped across threads, or serialized as a
//! [`StreamCheckpoint`] and reattached to an equal-content database later.
//!
//! The enumeration visits the same leaves in the same order as
//! `Algorithm::GenericJoin` and meters the same deterministic
//! [`Stats`] — a fully drained stream performs *exactly* the work of the
//! materializing run (plus the streaming counters
//! [`Stats::rows_streamed`] / [`Stats::stream_pauses`]). The pruning entry
//! points stop early and therefore do strictly less:
//!
//! - [`ResultStream::exists`] — suspend after the first answer;
//! - [`ResultStream::limit`] — materialize only a `k`-prefix;
//! - [`ResultStream::offset`] — skip rows without delivering them;
//! - [`ResultStream::count`] — drain without materializing rows.
//!
//! Whether the *delay* between consecutive rows is guaranteed constant is a
//! property of the query, decided by the Carmeli–Kröll dichotomy
//! ([`fdjoin_query::EnumerationClass`], surfaced here as
//! [`ResultStream::enumeration_class`]): acyclic queries stream with
//! constant delay after the tries are built, FD-rescued cyclic queries too,
//! and for the rest the gap between rows can grow with the data.
//!
//! ```
//! use fdjoin_core::Engine;
//! use fdjoin_storage::{Database, Relation};
//! use fdjoin_stream::ResultStream;
//!
//! let q = fdjoin_query::examples::triangle();
//! let mut db = Database::new();
//! db.insert("R", Relation::from_rows(vec![0, 1], [[1, 2], [2, 3]]));
//! db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3], [3, 1]]));
//! db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1], [1, 2]]));
//!
//! let prepared = Engine::new().prepare(&q);
//! let mut stream = ResultStream::open(&prepared, &db).unwrap();
//! assert_eq!(stream.next_row(), Some(&[1, 2, 3][..]));
//! assert_eq!(stream.next_row(), Some(&[2, 3, 1][..]));
//! assert_eq!(stream.next_row(), None);
//! assert_eq!(stream.stats().rows_streamed, 2);
//! ```

use fdjoin_core::{Expander, JoinError, PreparedQuery, Stats};
use fdjoin_lattice::VarSet;
use fdjoin_obs::{Observer, SpanKind};
use fdjoin_storage::{Database, ProbeSnapshot, Relation, TrieIndex, Value};
use std::fmt;
use std::sync::Arc;

/// One atom's access path: its cached trie (columns in global binding
/// order) — the object the per-depth snapshots address into.
struct AtomState {
    idx: Arc<TrieIndex>,
    ordered_vars: Vec<u32>,
}

/// A suspended-and-resumable cursor over the answers of a prepared query.
///
/// Open one with [`ResultStream::open`]; pull rows with
/// [`ResultStream::next_row`] (or the pruning fast paths). The stream
/// borrows the [`PreparedQuery`] and [`Database`] it was opened over, but
/// between calls its search position is plain data — see the
/// [module docs](self) for the design and [`StreamCheckpoint`] for
/// detaching the position entirely.
pub struct ResultStream<'a> {
    prepared: &'a PreparedQuery,
    ex: Expander<'a>,
    atoms: Vec<AtomState>,
    /// Search variables in binding order (ascending id, atom vars only;
    /// UDF-only variables are filled by expansion at the leaves).
    order: Vec<u32>,
    /// Atoms participating at each search depth.
    at_depth: Vec<Vec<usize>>,
    /// `prefix_bound[d]` = the variables of `order[..d]` — the bound set is
    /// a pure function of depth, so it is never stored in the cursor state.
    prefix_bound: Vec<VarSet>,
    target: VarSet,
    /// Content versions of each atom's relation at open time, stamped into
    /// checkpoints so a resume against drifted data is rejected.
    versions: Vec<u64>,
    udf_version: u64,
    // --- the suspended search position (all plain data) ---
    /// `levels[d][ai]` is atom `ai`'s cursor with its variables among
    /// `order[..d]` descended. Depth `d+1` is always rewritten from depth
    /// `d`, so backtracking needs no undo. The lead cursor at the current
    /// depth is *pre-advanced* past the candidate it last descended into,
    /// so resuming is nothing but continuing the leapfrog loop.
    levels: Vec<Vec<ProbeSnapshot>>,
    /// The leapfrog lead (smallest-range participating atom) per depth.
    lead: Vec<usize>,
    vals: Vec<Value>,
    depth: usize,
    done: bool,
    row_buf: Vec<Value>,
    stats: Stats,
    /// The prepared query's tracing handle: each delivered row is a
    /// `stream_advance` span (no-op when the engine has no observer).
    obs: Observer,
}

impl<'a> ResultStream<'a> {
    /// Open a cursor over `prepared`'s answers on `db`, positioned before
    /// the first row. Builds (or reuses from the engine-wide cache) one
    /// trie per atom plus the FD-guard tries; no output is computed yet.
    pub fn open(
        prepared: &'a PreparedQuery,
        db: &'a Database,
    ) -> Result<ResultStream<'a>, JoinError> {
        let mut stats = Stats::default();
        let paths = prepared.access_paths(db)?;
        let q = prepared.query();
        let ex = Expander::new(q, db, &paths, &mut stats)?;
        let nv = q.n_vars();
        let atom_vars: VarSet = q
            .atoms()
            .iter()
            .fold(VarSet::EMPTY, |s, a| s.union(a.var_set()));
        let order: Vec<u32> = (0..nv as u32).filter(|&v| atom_vars.contains(v)).collect();
        let rank: Vec<usize> = {
            let mut r = vec![usize::MAX; nv];
            for (i, &v) in order.iter().enumerate() {
                r[v as usize] = i;
            }
            r
        };
        let mut atoms: Vec<AtomState> = Vec::with_capacity(q.atoms().len());
        let mut versions: Vec<u64> = Vec::with_capacity(q.atoms().len());
        for a in q.atoms() {
            let rel = db.relation(&a.name)?;
            versions.push(rel.version());
            let mut ordered: Vec<u32> = a.vars.clone();
            ordered.sort_by_key(|&v| rank[v as usize]);
            atoms.push(AtomState {
                idx: paths.base(&a.name, rel, &ordered, &mut stats),
                ordered_vars: ordered,
            });
        }
        let at_depth: Vec<Vec<usize>> = order
            .iter()
            .map(|&v| {
                (0..atoms.len())
                    .filter(|&ai| atoms[ai].ordered_vars.contains(&v))
                    .collect()
            })
            .collect();
        let mut prefix_bound: Vec<VarSet> = Vec::with_capacity(order.len() + 1);
        prefix_bound.push(VarSet::EMPTY);
        for &v in &order {
            let last = *prefix_bound.last().unwrap();
            prefix_bound.push(last.insert(v));
        }
        let levels: Vec<Vec<ProbeSnapshot>> = (0..=order.len())
            .map(|_| atoms.iter().map(|a| a.idx.probe().snapshot()).collect())
            .collect();
        let mut lead = vec![0usize; order.len()];
        if !order.is_empty() {
            lead[0] = at_depth[0]
                .iter()
                .copied()
                .min_by_key(|&ai| atoms[ai].idx.len())
                .expect("search variables occur in some atom");
        }
        Ok(ResultStream {
            prepared,
            ex,
            atoms,
            order,
            at_depth,
            prefix_bound,
            target: VarSet::full(nv as u32),
            versions,
            udf_version: db.udfs.version(),
            levels,
            lead,
            vals: vec![0 as Value; nv],
            depth: 0,
            done: false,
            row_buf: Vec::new(),
            stats,
            obs: prepared.observer().clone(),
        })
    }

    /// Advance the suspended descent to the next answer, leaving it in
    /// `row_buf`. This is the whole state machine: reconstruct live probes
    /// from the current depth's snapshots, leapfrog to the next candidate,
    /// narrow into its subtrie, and either emit (at the leaf) or descend.
    /// Exactly mirrors `fdjoin_core`'s Generic-Join recursion — same visit
    /// order, same [`Stats`] accounting — with the call stack replaced by
    /// `levels`/`lead`/`depth`.
    fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        if self.order.is_empty() {
            // No atom variables to search (nullary atoms only): at most one
            // answer, produced entirely by expansion from the empty prefix.
            self.done = true;
            let mut b = VarSet::EMPTY;
            let mut v = self.vals.clone();
            if self
                .ex
                .expand_tuple(&mut b, &mut v, self.target, &mut self.stats)
                && self.ex.verify_fds(b, &v, &mut self.stats)
            {
                self.stats.output_tuples += 1;
                self.row_buf = v;
                return true;
            }
            return false;
        }
        // Disjoint field borrows: probes borrow `atoms` (shared) while the
        // cursor state and counters are mutated alongside.
        let ResultStream {
            ex,
            atoms,
            order,
            at_depth,
            prefix_bound,
            target,
            levels,
            lead,
            vals,
            depth,
            done,
            row_buf,
            stats,
            ..
        } = self;
        let atoms: &[AtomState] = atoms;
        'outer: loop {
            let d = *depth;
            let participating = &at_depth[d];
            let li = lead[d];
            // The lead cursor is live across the whole leapfrog at this
            // depth; everyone else is resumed per seek from its snapshot.
            let mut lp = atoms[li].idx.resume(levels[d][li]);
            while let Some(candidate) = lp.current() {
                let mut ok = true;
                let mut overshoot: Option<Value> = None;
                for &ai in participating.iter() {
                    if ai == li {
                        continue;
                    }
                    stats.probes += 1;
                    // Forward-only seek; the moved position persists in the
                    // snapshot so each cursor sweeps its range at most once
                    // over the whole level — across pauses too.
                    let mut p = atoms[ai].idx.resume(levels[d][ai]);
                    let res = p.seek(candidate);
                    levels[d][ai] = p.snapshot();
                    match res {
                        Some(w) if w == candidate => {}
                        other => {
                            ok = false;
                            overshoot = other;
                            break;
                        }
                    }
                }
                if ok {
                    // Narrow every participating cursor into the candidate's
                    // subtrie at depth d+1 (all are positioned at the
                    // candidate, so these descends are cheap).
                    let (cur, rest) = levels.split_at_mut(d + 1);
                    let next = &mut rest[0];
                    next.copy_from_slice(&cur[d]);
                    for &ai in participating.iter() {
                        stats.probes += 1;
                        let mut p = atoms[ai].idx.resume(next[ai]);
                        let descended = p.descend(candidate);
                        debug_assert!(descended, "all cursors verified to contain candidate");
                        next[ai] = p.snapshot();
                    }
                    vals[order[d] as usize] = candidate;
                    // Pre-advance the lead past this candidate *before*
                    // descending: when the search later backtracks to this
                    // depth — possibly in a different `next_row` call, or
                    // after a checkpoint round-trip — continuing the loop
                    // is all it takes.
                    lp.next_value();
                    cur[d][li] = lp.snapshot();
                    if d + 1 == order.len() {
                        // Leaf: all atom variables bound. Expand UDF-only
                        // variables, verify the FDs, emit on success. The
                        // depth stays put — dead leaves keep leapfrogging.
                        let mut b = prefix_bound[order.len()];
                        let mut v = vals.clone();
                        if ex.expand_tuple(&mut b, &mut v, *target, stats)
                            && ex.verify_fds(b, &v, stats)
                        {
                            stats.output_tuples += 1;
                            *row_buf = v;
                            return true;
                        }
                    } else {
                        // Tie-break by matching *row* count (snapshots hold
                        // node coordinates, whose width is the distinct-value
                        // count) so the choice — and the deterministic stats —
                        // agree with the materialized Generic-Join driver.
                        lead[d + 1] = at_depth[d + 1]
                            .iter()
                            .copied()
                            .min_by_key(|&ai| atoms[ai].idx.resume(next[ai]).len())
                            .expect("search variables occur in some atom");
                        *depth = d + 1;
                        continue 'outer;
                    }
                } else {
                    match overshoot {
                        // Leapfrog: jump the lead straight to the overshot
                        // value — the next possible intersection member.
                        Some(w) => {
                            lp.seek(w);
                        }
                        // An atom ran out entirely: this depth is exhausted.
                        None => break,
                    }
                }
            }
            // Depth d exhausted: backtrack (or finish at the root).
            levels[d][li] = lp.snapshot();
            if d == 0 {
                *done = true;
                return false;
            }
            *depth = d - 1;
        }
    }

    /// The next answer, or `None` when the enumeration is exhausted. Each
    /// delivered row suspends the descent ([`Stats::stream_pauses`]) and
    /// counts into [`Stats::rows_streamed`]. Rows come out in lexicographic
    /// order of the atom variables (ascending id) and are distinct; the
    /// slice covers *all* query variables in ascending id, UDF-filled ones
    /// included — the same schema as a materialized `JoinResult::output`.
    #[allow(clippy::should_implement_trait)] // lending semantics, not Iterator
    pub fn next_row(&mut self) -> Option<&[Value]> {
        // One span per delivered (or attempted) row: the descent work
        // between two suspensions. Gated so the disabled path costs one
        // branch per row.
        let mut span = if self.obs.is_enabled() {
            Some(self.obs.span(SpanKind::StreamAdvance, "next_row"))
        } else {
            None
        };
        let got = self.advance();
        if let Some(span) = &mut span {
            span.field("emitted", got);
            span.field("rows_streamed", self.stats.rows_streamed + got as u64);
        }
        if got {
            self.stats.rows_streamed += 1;
            self.stats.stream_pauses += 1;
            Some(&self.row_buf)
        } else {
            None
        }
    }

    /// Whether at least one (more) answer exists, stopping the descent at
    /// the first one — the strongest pruning: on a nonempty result this
    /// does a vanishing fraction of the full enumeration's work. Consumes
    /// the witnessing row.
    pub fn exists(&mut self) -> bool {
        self.advance()
    }

    /// Drain the remaining answers and return how many there were, without
    /// materializing or delivering any row (no [`Stats::rows_streamed`]).
    pub fn count(&mut self) -> u64 {
        let mut n = 0;
        while self.advance() {
            n += 1;
        }
        n
    }

    /// Skip up to `n` answers without delivering them, then return `self`
    /// for chaining (`stream.offset(100).limit(10)`). Skipping still walks
    /// the descent — constant delay per skipped row on constant-delay
    /// queries, but never free.
    pub fn offset(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            if !self.advance() {
                break;
            }
        }
        self
    }

    /// Materialize at most `k` further answers, in arrival (enumeration)
    /// order. Stops the descent after the `k`-th row: on large results this
    /// does strictly less deterministic work than any materializing
    /// execution.
    pub fn limit(&mut self, k: usize) -> Relation {
        let mut out = Relation::new((0..self.vals.len() as u32).collect());
        for _ in 0..k {
            match self.next_row() {
                Some(row) => out.push_row(row),
                None => break,
            }
        }
        out
    }

    /// Drain the stream into a relation equal to the materialized
    /// `JoinResult::output` of the same query (sorted, deduplicated).
    pub fn collect_rows(&mut self) -> Relation {
        let mut out = Relation::new((0..self.vals.len() as u32).collect());
        while let Some(row) = self.next_row() {
            out.push_row(row);
        }
        out.sort_dedup();
        out
    }

    /// Work counters so far: the deterministic descent/expansion counters
    /// (identical to the materializing run's once drained), the cache-warmth
    /// split, and the streaming counters.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Whether the enumeration has been exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.done
    }

    /// The Carmeli–Kröll enumeration class of the underlying query: whether
    /// the delay between consecutive [`ResultStream::next_row`] answers is
    /// guaranteed constant (see [`fdjoin_query::EnumerationClass`]).
    pub fn enumeration_class(&self) -> fdjoin_query::EnumerationClass {
        self.prepared.enumeration_class()
    }

    /// Detach the suspended search position as plain data. The checkpoint
    /// is stamped with the content versions of everything the enumeration
    /// reads, so [`ResultStream::resume`] can verify it still addresses the
    /// same rows.
    pub fn checkpoint(&self) -> StreamCheckpoint {
        StreamCheckpoint {
            levels: self.levels.clone(),
            lead: self.lead.clone(),
            vals: self.vals.clone(),
            depth: self.depth,
            done: self.done,
            versions: self.versions.clone(),
            udf_version: self.udf_version,
            stats: self.stats,
        }
    }

    /// Reattach a [`StreamCheckpoint`] to `prepared` over `db`, continuing
    /// the enumeration exactly where [`ResultStream::checkpoint`] left it —
    /// no row is duplicated or dropped. Fails with
    /// [`StreamError::StaleCheckpoint`] if any relation the enumeration
    /// reads (atoms and FD guards are all atoms) or the UDF registry has
    /// changed content since the checkpoint was taken; cursor positions are
    /// trie-node ranges, meaningful only against identical content.
    pub fn resume(
        prepared: &'a PreparedQuery,
        db: &'a Database,
        ck: &StreamCheckpoint,
    ) -> Result<ResultStream<'a>, StreamError> {
        let mut s = ResultStream::open(prepared, db)?;
        if ck.versions.len() != s.versions.len()
            || ck.levels.len() != s.levels.len()
            || ck.levels.iter().any(|row| row.len() != s.atoms.len())
            || ck.lead.len() != s.lead.len()
            || ck.vals.len() != s.vals.len()
            || ck.lead.iter().any(|&ai| ai >= s.atoms.len())
            || ck.depth >= ck.levels.len()
        {
            return Err(StreamError::Join(JoinError::InvalidOptions(
                "checkpoint shape does not match the prepared query".into(),
            )));
        }
        for (ai, (&have, &want)) in s.versions.iter().zip(&ck.versions).enumerate() {
            if have != want {
                return Err(StreamError::StaleCheckpoint {
                    relation: prepared.query().atoms()[ai].name.clone(),
                });
            }
        }
        if s.udf_version != ck.udf_version {
            return Err(StreamError::StaleCheckpoint {
                relation: "<udf registry>".into(),
            });
        }
        // Continue the checkpoint's deterministic metering; the index
        // acquisitions this reopen just performed are genuine traffic of
        // the resumed stream, so they merge on top.
        let reopened = s.stats;
        s.stats = ck.stats;
        s.stats.index_builds += reopened.index_builds;
        s.stats.index_hits += reopened.index_hits;
        s.levels = ck.levels.clone();
        s.lead = ck.lead.clone();
        s.vals = ck.vals.clone();
        s.depth = ck.depth;
        s.done = ck.done;
        Ok(s)
    }
}

impl fmt::Debug for ResultStream<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultStream")
            .field("depth", &self.depth)
            .field("done", &self.done)
            .field("rows_streamed", &self.stats.rows_streamed)
            .finish()
    }
}

/// A suspended [`ResultStream`] position as plain data: the per-depth
/// cursor snapshots, the partial binding, and the content versions they are
/// valid against. Detached from every lifetime — hold it as long as you
/// like, then [`ResultStream::resume`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamCheckpoint {
    levels: Vec<Vec<ProbeSnapshot>>,
    lead: Vec<usize>,
    vals: Vec<Value>,
    depth: usize,
    done: bool,
    versions: Vec<u64>,
    udf_version: u64,
    stats: Stats,
}

impl StreamCheckpoint {
    /// The work counters accumulated up to the checkpoint.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Rows delivered before the checkpoint was taken.
    pub fn rows_streamed(&self) -> u64 {
        self.stats.rows_streamed
    }
}

/// Why a stream could not be (re)opened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The underlying engine error (missing relation, invalid checkpoint
    /// shape, budget rejection, …).
    Join(JoinError),
    /// A [`StreamCheckpoint`] was presented against a database whose named
    /// relation (or UDF registry) no longer has the content the checkpoint
    /// was taken over — its cursor positions would address the wrong rows.
    StaleCheckpoint {
        /// The first relation whose content version drifted.
        relation: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Join(e) => e.fmt(f),
            StreamError::StaleCheckpoint { relation } => write!(
                f,
                "stale checkpoint: relation {relation:?} changed content since the \
                 checkpoint was taken"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<JoinError> for StreamError {
    fn from(e: JoinError) -> StreamError {
        StreamError::Join(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdjoin_core::{Algorithm, Engine, ExecOptions};

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_rows(vec![0, 1], [[1, 2], [1, 3], [2, 3], [4, 5]]),
        );
        db.insert(
            "S",
            Relation::from_rows(vec![1, 2], [[2, 3], [3, 1], [5, 4]]),
        );
        db.insert(
            "T",
            Relation::from_rows(vec![2, 0], [[3, 1], [1, 1], [4, 4]]),
        );
        db
    }

    #[test]
    fn drains_to_the_materialized_answer() {
        let q = fdjoin_query::examples::triangle();
        let db = triangle_db();
        let prepared = Engine::new().prepare(&q);
        let expect = prepared
            .execute(&db, &ExecOptions::new().algorithm(Algorithm::GenericJoin))
            .unwrap();
        let mut s = ResultStream::open(&prepared, &db).unwrap();
        let got = s.collect_rows();
        assert_eq!(got, expect.output);
        assert!(s.is_exhausted());
        assert_eq!(s.next_row(), None, "exhaustion is stable");
        // A drained stream performed exactly the materializing run's
        // deterministic work (streaming counters aside).
        let mut ours = s.stats().deterministic();
        assert_eq!(ours.rows_streamed, expect.output.len() as u64);
        assert_eq!(ours.stream_pauses, ours.rows_streamed);
        ours.rows_streamed = 0;
        ours.stream_pauses = 0;
        assert_eq!(ours, expect.stats.deterministic());
    }

    #[test]
    fn exists_stops_early() {
        let q = fdjoin_query::examples::triangle();
        let db = triangle_db();
        let prepared = Engine::new().prepare(&q);
        let full = prepared
            .execute(&db, &ExecOptions::new().algorithm(Algorithm::GenericJoin))
            .unwrap();
        let mut s = ResultStream::open(&prepared, &db).unwrap();
        assert!(s.exists());
        assert!(
            s.stats().deterministic().work() < full.stats.deterministic().work(),
            "exists() pruned the enumeration"
        );
    }

    #[test]
    fn offset_limit_paginate_without_overlap() {
        let q = fdjoin_query::examples::triangle();
        let db = triangle_db();
        let prepared = Engine::new().prepare(&q);
        let mut all = ResultStream::open(&prepared, &db).unwrap();
        let everything = all.collect_rows();
        let mut pages = Relation::new(vec![0, 1, 2]);
        let mut start = 0usize;
        loop {
            let mut s = ResultStream::open(&prepared, &db).unwrap();
            let page = s.offset(start).limit(2);
            if page.is_empty() {
                break;
            }
            for row in page.rows() {
                pages.push_row(row);
            }
            start += page.len();
        }
        pages.sort_dedup();
        assert_eq!(pages, everything);
    }

    #[test]
    fn checkpoint_rejects_content_drift() {
        let q = fdjoin_query::examples::triangle();
        let mut db = triangle_db();
        let prepared = Engine::new().prepare(&q);
        let ck = {
            let mut s = ResultStream::open(&prepared, &db).unwrap();
            s.next_row();
            s.checkpoint()
        };
        // Same data, same versions: resumes fine.
        assert!(ResultStream::resume(&prepared, &db, &ck).is_ok());
        // Touch one relation: its version moves, the checkpoint is stale.
        db.relation_mut("S")
            .unwrap()
            .apply_delta([[9u64, 9]], [] as [&[Value]; 0]);
        match ResultStream::resume(&prepared, &db, &ck) {
            Err(StreamError::StaleCheckpoint { relation }) => assert_eq!(relation, "S"),
            other => panic!("expected StaleCheckpoint, got {other:?}"),
        }
    }

    #[test]
    fn udf_filled_variables_expand_at_leaves() {
        // `z` occurs in no atom: it is bound by expansion, not search.
        let q = fdjoin_query::examples::fig5_udf_product();
        let mut db = Database::new();
        db.insert("R", Relation::from_rows(vec![0], [[1], [2]]));
        db.insert("S", Relation::from_rows(vec![1], [[10]]));
        db.udfs
            .register(VarSet::from_vars([0, 1]), 2, |v| v[0] + v[1]);
        let prepared = Engine::new().prepare(&q);
        let expect = prepared
            .execute(&db, &ExecOptions::new().algorithm(Algorithm::GenericJoin))
            .unwrap();
        let mut s = ResultStream::open(&prepared, &db).unwrap();
        assert_eq!(s.collect_rows(), expect.output);
    }
}
