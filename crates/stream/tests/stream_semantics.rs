//! Streaming semantics against the materializing engine: the cursor must
//! enumerate exactly the set every one of the six algorithms computes, a
//! checkpoint pause/resume at any point must neither drop nor duplicate a
//! row, and pruned consumption (`exists`, `limit`) must do strictly less
//! deterministic work than materializing the full answer.

use fdjoin_core::{Algorithm, Engine, ExecOptions, JoinError, PreparedQuery};
use fdjoin_query::{examples, Query};
use fdjoin_storage::{Database, Value};
use fdjoin_stream::ResultStream;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALL_SIX: [Algorithm; 6] = [
    Algorithm::Chain,
    Algorithm::Sma,
    Algorithm::Csma,
    Algorithm::GenericJoin,
    Algorithm::BinaryJoin,
    Algorithm::Naive,
];

fn instance(q: &Query, seed: u64, rows: usize, keep: u32) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    fdjoin_instances::random_instance(q, &mut rng, rows, keep)
}

/// Differential acceptance: on random Fig. 4 and Fig. 9 instances, a
/// drained `ResultStream` equals the output of every algorithm in the
/// engine — chain, SMA, CSMA, Generic-Join, binary plans, and the naive
/// oracle.
#[test]
fn stream_agrees_with_all_six_algorithms() {
    for (q, rows) in [(examples::fig4_query(), 25), (examples::fig9_query(), 40)] {
        for seed in [3u64, 17, 90] {
            let db = instance(&q, seed, rows, 80);
            let prepared = Engine::new().prepare(&q);
            let streamed = ResultStream::open(&prepared, &db)
                .expect("open")
                .collect_rows();
            let mut compared = 0;
            for alg in ALL_SIX {
                let r = match prepared.execute(&db, &ExecOptions::new().algorithm(alg)) {
                    Ok(r) => r,
                    // Chain/SMA legitimately refuse some lattice/profile
                    // combinations (Example 5.31 etc.); every other error
                    // is a real failure.
                    Err(JoinError::NoGoodChain | JoinError::NoGoodProof) => continue,
                    Err(e) => panic!("{alg} failed on seed {seed}: {e}"),
                };
                assert_eq!(
                    streamed,
                    r.output,
                    "stream vs {alg} on {} (seed {seed})",
                    q.display_body()
                );
                compared += 1;
            }
            // CSMA, Generic-Join, binary plans, and the oracle never refuse.
            assert!(compared >= 4, "only {compared} algorithms compared");
        }
    }
}

/// The work-pruning acceptance criterion: on a Fig. 4-scale instance,
/// `exists()` and `limit(k)` each cost strictly less deterministic work
/// than materializing the full answer.
#[test]
fn pruned_consumption_beats_materialization() {
    let q = examples::fig4_query();
    let db = instance(&q, 42, 40, 80);
    let prepared = Engine::new().prepare(&q);

    let full = prepared
        .execute(&db, &ExecOptions::new().algorithm(Algorithm::GenericJoin))
        .expect("materialize");
    assert!(full.output.len() > 8, "instance must be non-trivial");
    let full_work = full.stats.deterministic().work();

    let mut probe = ResultStream::open(&prepared, &db).expect("open");
    assert!(probe.exists());
    let exists_work = probe.stats().deterministic().work();
    assert!(
        exists_work < full_work,
        "exists must prune: {exists_work} vs {full_work}"
    );

    let mut page = ResultStream::open(&prepared, &db).expect("open");
    let rows = page.limit(4);
    assert_eq!(rows.len(), 4);
    let limit_work = page.stats().deterministic().work();
    assert!(
        limit_work < full_work,
        "limit(4) must prune: {limit_work} vs {full_work}"
    );
    assert!(exists_work <= limit_work, "one row costs at most four");
}

fn drain(stream: &mut ResultStream<'_>) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    while let Some(r) = stream.next_row() {
        rows.push(r.to_vec());
    }
    rows
}

fn paginate(prepared: &PreparedQuery, db: &Database, pause_after: usize) -> Vec<Vec<Value>> {
    let mut first = ResultStream::open(prepared, db).expect("open");
    let mut rows = Vec::new();
    for _ in 0..pause_after {
        match first.next_row() {
            Some(r) => rows.push(r.to_vec()),
            None => break,
        }
    }
    let ck = first.checkpoint();
    drop(first);
    let mut second = ResultStream::resume(prepared, db, &ck).expect("resume");
    rows.extend(drain(&mut second));
    rows
}

/// Checkpoints hold trie-*node* coordinates of the columnar level-trie
/// layout, so they are only sound if node ids are a deterministic function
/// of relation content — not of any particular build. Exercise exactly
/// that: pause at every row boundary, then resume each checkpoint through
/// a *freshly prepared* query whose access-path cache is empty, forcing
/// every index to be rebuilt before the cursor reattaches. The resumed
/// enumeration must continue row-exact, and the deterministic work
/// counters carried through the checkpoint must land on the same totals
/// as the uninterrupted drain.
#[test]
fn checkpoint_survives_fresh_index_builds_at_every_boundary() {
    let q = examples::fig4_query();
    let db = instance(&q, 7, 20, 85);
    let prepared = Engine::new().prepare(&q);

    let mut baseline = ResultStream::open(&prepared, &db).expect("open");
    let uninterrupted = drain(&mut baseline);
    let full_stats = baseline.stats().deterministic();
    assert!(uninterrupted.len() > 4, "instance must be non-trivial");

    for pause_after in 0..=uninterrupted.len() {
        let mut first = ResultStream::open(&prepared, &db).expect("open");
        let mut rows = Vec::new();
        for _ in 0..pause_after {
            rows.push(
                first
                    .next_row()
                    .expect("pause point within bounds")
                    .to_vec(),
            );
        }
        let ck = first.checkpoint();
        assert_eq!(ck.rows_streamed(), pause_after as u64);
        drop(first);

        // A fresh engine: empty IndexSet, every trie rebuilt from content.
        let fresh = Engine::new().prepare(&q);
        let mut second = ResultStream::resume(&fresh, &db, &ck).expect("resume");
        rows.extend(drain(&mut second));
        assert_eq!(
            rows, uninterrupted,
            "resume after {pause_after} rows through rebuilt indexes"
        );
        assert_eq!(
            second.stats().deterministic(),
            full_stats,
            "deterministic work must be pause-invariant (pause at {pause_after})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pausing after a random number of rows and resuming from the
    /// checkpoint in a fresh cursor yields exactly the uninterrupted
    /// enumeration — same rows, same order, nothing dropped or repeated.
    #[test]
    fn checkpoint_resume_never_drops_or_duplicates(
        seed in 0u64..6,
        pause_after in 0usize..40,
    ) {
        let q = examples::fig4_query();
        let db = instance(&q, 100 + seed, 20, 85);
        let prepared = Engine::new().prepare(&q);

        let uninterrupted = drain(&mut ResultStream::open(&prepared, &db).expect("open"));
        let paged = paginate(&prepared, &db, pause_after);
        prop_assert_eq!(paged, uninterrupted);
    }
}
