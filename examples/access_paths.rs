//! The shared access-path layer under a served workload: trie indexes are
//! built once per (relation version, column order) and reused across
//! repeated executions, concurrent batches, and delta batches — observable
//! through the build/hit counters on `PrepStats` and per-run `Stats`.
//!
//! Run with `cargo run --release --example access_paths`.

use fdjoin::core::{Algorithm, Engine, ExecOptions};
use fdjoin::delta::{ApplyDelta, DeltaBatch, DeltaOptions};
use fdjoin::exec::ExecuteBatch;
use fdjoin::instances::bounded_degree_triangle;
use fdjoin::query::examples;
use std::sync::Arc;

fn main() {
    let q = examples::triangle();
    let prepared = Arc::new(Engine::new().prepare(&q));
    let opts = ExecOptions::new().algorithm(Algorithm::GenericJoin);

    // A small fleet of databases, as a serving layer would hold per tenant.
    let dbs: Vec<_> = (1..=4u64)
        .map(|k| bounded_degree_triangle(64 * k, 8))
        .collect();

    println!("== cold pass: every (relation, order) trie is built once ==");
    for (i, db) in dbs.iter().enumerate() {
        let r = prepared.execute(db, &opts).unwrap();
        println!(
            "db {i}: |out| = {:3}  index builds = {:2}  hits = {:2}",
            r.output.len(),
            r.stats.index_builds,
            r.stats.index_hits
        );
    }
    let warm = prepared.prep_stats();
    println!(
        "cache after cold pass: builds = {}, hits = {}, resident = {} ({} bytes)\n",
        warm.index_builds,
        warm.index_hits,
        prepared.index_set().len(),
        prepared.index_set().memory_bytes()
    );

    println!("== warm batch (4 threads): zero rebuilds, all hits ==");
    let batch = prepared.execute_batch_with(&dbs, &opts, 4);
    assert_eq!(batch.stats.failed, 0);
    let window = prepared.prep_stats().since(&warm);
    println!(
        "batch of {}: index builds = {}, hits = {}\n",
        dbs.len(),
        window.index_builds,
        window.index_hits
    );
    assert_eq!(window.index_builds, 0, "warm batch must not rebuild");

    println!("== delta batches: rebuild only what a delta touched ==");
    let view_opts = DeltaOptions::new().exec(ExecOptions::new().algorithm(Algorithm::Chain));
    let mut view = prepared
        .materialize(dbs[0].clone(), view_opts)
        .expect("materialize");
    let before = prepared.prep_stats();
    let delta = DeltaBatch::new().insert("R", [1u64, 2]).delete("R", [2, 3]);
    view.apply_delta(&delta).expect("apply_delta");
    let window = prepared.prep_stats().since(&before);
    println!(
        "1 delta on R: index builds = {} (R-derived tries), hits = {} (S/T reused)",
        window.index_builds, window.index_hits
    );

    let before = prepared.prep_stats();
    view.apply_delta(&DeltaBatch::new().insert("R", [1u64, 2]))
        .expect("no-op replay");
    let window = prepared.prep_stats().since(&before);
    println!(
        "no-op replay: index builds = {} (version unchanged)",
        window.index_builds
    );
    assert_eq!(window.index_builds, 0);

    let total = prepared.prep_stats();
    println!(
        "\ntotal: {} builds amortized over {} acquisitions ({:.1}% hit rate)",
        total.index_builds,
        total.index_builds + total.index_hits,
        100.0 * total.index_hits as f64 / (total.index_builds + total.index_hits).max(1) as f64
    );
}
