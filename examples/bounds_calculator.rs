//! Side-by-side bound calculator: AGM, AGM(Q⁺), chain, and GLVV for the
//! paper's example queries over a sweep of input sizes — the numbers behind
//! the Fig. 10 story.
//!
//! ```sh
//! cargo run --example bounds_calculator
//! ```

use fdjoin::bigint::{rat, Rational};
use fdjoin::bounds::agm::{agm_closure_log_bound, agm_log_bound};
use fdjoin::bounds::chain::best_chain_bound;
use fdjoin::bounds::llp::solve_llp;
use fdjoin::query::{examples, Query};

fn row(name: &str, q: &Query, n: i64) {
    let logs: Vec<Rational> = vec![rat(n, 1); q.atoms().len()];
    let pres = q.lattice_presentation();
    let fmt = |r: Option<Rational>| match r {
        Some(v) => format!("{:>8.3}", v.to_f64() / n as f64),
        None => format!("{:>8}", "∞"),
    };
    let agm = agm_log_bound(q, &logs).map(|c| c.value);
    let agmp = agm_closure_log_bound(q, &logs).map(|c| c.value);
    let chain = best_chain_bound(&pres.lattice, &pres.inputs, &logs).map(|c| c.log_bound);
    let glvv = solve_llp(&pres.lattice, &pres.inputs, &logs).value;
    println!(
        "{name:<18} {} {} {} {:>8.3}",
        fmt(agm),
        fmt(agmp),
        fmt(chain),
        glvv.to_f64() / n as f64
    );
}

fn main() {
    println!("exponents of N (uniform cardinalities N = 2^12):\n");
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8}",
        "query", "AGM", "AGM(Q⁺)", "chain", "GLVV"
    );
    let n = 12;
    row("triangle", &examples::triangle(), n);
    row("fig1 UDF", &examples::fig1_udf(), n);
    row("4-cycle + key", &examples::four_cycle_key(), n);
    row("composite key", &examples::composite_key(), n);
    row("fig5 product", &examples::fig5_udf_product(), n);
    row("M3", &examples::m3_query(), n);
    row("fig4", &examples::fig4_query(), n);
    row("fig9", &examples::fig9_query(), n);
    row("simple-FD path", &examples::simple_fd_path(), n);
    println!("\nreading guide: AGM ignores FDs; AGM(Q⁺) exploits simple keys only;");
    println!("the chain bound is tight on distributive lattices; GLVV is the");
    println!("entropy bound the paper's CSMA algorithm meets up to polylog.");
}
