//! The data-dependent cost model, end to end: watch measured degree/skew
//! statistics flip an `Algorithm::Auto` decision between two databases
//! with *identical size profiles*, then watch a materialized view pick
//! delta-specialized plans per delta join.
//!
//! Run with: `cargo run --example cost_model`

use fdjoin::core::{Engine, ExecOptions};
use fdjoin::delta::{ApplyDelta, DeltaBatch, DeltaOptions};
use fdjoin::instances::random_instance;
use fdjoin::storage::{Database, Relation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Subsets of one FD-consistent pool instance: `spread` picks every
/// (n/k)-th sorted row (low skew), otherwise the first k rows pile onto
/// few prefix values (high skew). Same row count either way.
fn subset(rel: &Relation, k: usize, spread: bool) -> Relation {
    let n = rel.len();
    if spread {
        rel.select_rows((0..k).map(|i| i * n / k))
    } else {
        rel.select_rows(0..k)
    }
}

fn main() {
    // ----------------------------------------------------------------- //
    // Part 1: the Auto tie-break. Fig. 4 is the paper's chain-not-tight
    // query (chain bound 3/2·n vs. LLP optimum 4/3·n): worst-case
    // analysis alone cannot close the gap, so the measured statistics
    // decide.
    // ----------------------------------------------------------------- //
    let q = fdjoin::query::examples::fig4_query();
    let mut rng = StdRng::seed_from_u64(1);
    let pool = random_instance(&q, &mut rng, 4000, 100);
    let k = 64usize;
    let mk = |spread: bool| -> Database {
        let mut db = pool.clone();
        for a in q.atoms() {
            db.insert(
                a.name.clone(),
                subset(pool.relation(&a.name).unwrap(), k, spread),
            );
        }
        db
    };
    let uniform = mk(true);
    let skewed = mk(false);

    let engine = Engine::new();
    let prepared = engine.prepare(&q);
    println!("query: {}", q.display_body());
    println!(
        "size profiles: uniform {:?}, skewed {:?} (identical)\n",
        prepared.size_profile(&uniform).unwrap(),
        prepared.size_profile(&skewed).unwrap(),
    );
    for (tag, db) in [("uniform", &uniform), ("skewed ", &skewed)] {
        let r = prepared.execute(db, &ExecOptions::new()).unwrap();
        let d = r.auto.expect("Auto records a decision");
        let f = |x: &Option<fdjoin::bigint::Rational>| {
            x.as_ref().map(|v| v.to_f64()).unwrap_or(f64::NAN)
        };
        println!(
            "{tag}: ran {:<5} ({})\n         worst case: chain 2^{:.2} vs LLP 2^{:.2}",
            d.algorithm.to_string(),
            d.reason,
            f(&d.chain_log_bound),
            f(&d.llp_log_bound),
        );
        println!(
            "         measured:   avg 2^{:.2}, skew-pessimistic 2^{:.2}  (gap {:.2})",
            f(&d.estimate_log_avg),
            f(&d.estimate_log_max),
            f(&d.estimate_log_max) - f(&d.estimate_log_avg),
        );
        println!("         output: {} tuples\n", r.output.len());
    }

    // ----------------------------------------------------------------- //
    // Part 2: delta-specialized plan selection. The same cost model
    // prices each delta join; a 1-tuple delta runs a Δ-first binary plan
    // instead of the view's full plan, and DeltaStats shows the saving.
    // ----------------------------------------------------------------- //
    let tri = fdjoin::query::examples::triangle();
    let mut rng = StdRng::seed_from_u64(4242);
    let db = random_instance(&tri, &mut rng, 400, 90);
    let prepared = Arc::new(Engine::new().prepare(&tri));
    let mut view = prepared
        .materialize(db.clone(), DeltaOptions::new())
        .unwrap();
    let mut plain = prepared
        .materialize(db, DeltaOptions::new().specialize_deltas(false))
        .unwrap();
    println!("triangle view: {} tuples materialized", view.output().len());
    for step in 0..4u64 {
        let delta = DeltaBatch::new().insert("R", [900 + step, 901 + step]);
        let bs = view.apply_delta(&delta).unwrap();
        let bp = plain.apply_delta(&delta).unwrap();
        println!(
            "delta {step}: specialized ran {:?} (work {:>3}) vs view plan {:?} (work {:>3})",
            view.delta_algorithms(),
            bs.join_work,
            plain.delta_algorithms(),
            bp.join_work,
        );
        assert_eq!(view.output(), plain.output());
    }
    let total = view.stats();
    println!(
        "\nlifetime: {} delta joins, {} specialized, join work {} \
         (vs {} without specialization)",
        total.delta_joins,
        total.specialized_deltas,
        total.join_work,
        plain.stats().join_work,
    );
}
