//! Known frequencies / degree bounds (Sec. 1.1, Eq. 2 and Sec. 5.3):
//! CSMA accepts prescribed maximum degree bounds — strictly more general
//! than cardinalities and FDs — and its CLLP budget shrinks accordingly:
//! the triangle bound drops from `N^{3/2}` to `min(N^{3/2}, N·d)`.
//!
//! ```sh
//! cargo run --release --example degree_bounds
//! ```

use fdjoin::core::{Algorithm, Engine, ExecOptions, UserDegreeBound};
use fdjoin::instances::bounded_degree_triangle;
use fdjoin::query::examples;

fn main() {
    let q = examples::triangle();
    let n = 256u64;
    println!("triangle query with out-degree bound d on R(x → y), N = {n}\n");
    println!(
        "{:>6} {:>16} {:>12} {:>10}",
        "d", "CLLP bound (log2)", "output", "branches"
    );
    let prepared = Engine::new().prepare(&q);
    for d in [1u64, 2, 4, 16, 64, 256] {
        let db = bounded_degree_triangle(n, d);
        let real_d = db.relation("R").unwrap().max_degree(1) as u64;
        let opts = ExecOptions::new()
            .algorithm(Algorithm::Csma)
            .degree_bound(UserDegreeBound {
                atom: 0,
                on: vec![0],
                max_degree: real_d,
            });
        let out = prepared.execute(&db, &opts).expect("CSM sequence");
        println!(
            "{:>6} {:>16.3} {:>12} {:>10}",
            real_d,
            out.predicted_log_bound.as_ref().unwrap().to_f64(),
            out.output.len(),
            out.stats.branches
        );
    }
    println!("\nthe log2 bound tracks min(3/2·log N, log N + log d) — Eq. (2)'s");
    println!("min(N^{{3/2}}, N·d) shape, computed by the conditional LLP.");
}
