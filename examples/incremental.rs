//! Incremental maintenance tour: prepare once, stream deltas, watch the
//! counters.
//!
//! A long-lived triangle view absorbs a stream of single-edge updates.
//! Every batch is maintained by delta joins against the current relations
//! — the prepared query's plans are reused, nothing is re-prepared — and
//! `DeltaStats` shows the join work staying orders of magnitude below a
//! full recompute. A final bulk load trips the size threshold and falls
//! back to one recompute, also visible in the stats.
//!
//! Run with: `cargo run --example incremental`

use fdjoin::core::{Engine, ExecOptions};
use fdjoin::delta::{ApplyDelta, DeltaBatch, DeltaOptions};
use fdjoin::storage::{Database, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_graph_db(seed: u64, edges: usize, vertices: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for (name, vars) in [("R", vec![0, 1]), ("S", vec![1, 2]), ("T", vec![2, 0])] {
        let rows: Vec<[u64; 2]> = (0..edges)
            .map(|_| [rng.gen_range(0..vertices), rng.gen_range(0..vertices)])
            .collect();
        db.insert(name, Relation::from_rows(vars, rows));
    }
    db
}

fn main() {
    let q = fdjoin::query::examples::triangle();
    let db = random_graph_db(7, 3000, 200);

    // Prepare once; the lattice presentation and all per-profile plans
    // live on this handle for the lifetime of the view.
    let prepared = Arc::new(Engine::new().prepare(&q));
    let mut view = prepared
        .materialize(db, DeltaOptions::new())
        .expect("materialize");
    println!(
        "materialized {} triangles over {} edges ({} ran)\n",
        view.output().len(),
        view.database().total_tuples(),
        view.algorithm_used(),
    );

    // What would a from-scratch evaluation cost? (For comparison only.)
    let full = Engine::new()
        .execute(&q, view.database(), &ExecOptions::new())
        .expect("full join");
    println!("full recompute work: {:>8}", full.stats.work());

    // Stream 12 single-edge updates: insert an edge, retire another.
    let mut rng = StdRng::seed_from_u64(99);
    for step in 0..12u64 {
        let delta = DeltaBatch::new()
            .insert("R", [rng.gen_range(0..200), rng.gen_range(0..200)])
            .delete(
                "R",
                view.database()
                    .relation("R")
                    .unwrap()
                    .row(step as usize)
                    .to_vec(),
            );
        let bs = view.apply_delta(&delta).expect("apply_delta");
        println!(
            "step {step:>2}: work {:>6}  (delta joins {}, revalidated {}, \
             +{} / -{} tuples, plans {})",
            bs.join_work,
            bs.delta_joins,
            bs.revalidated,
            bs.tuples_added,
            bs.tuples_removed,
            if bs.planning_solves == 0 {
                "reused".to_string()
            } else {
                format!("{} new solves", bs.planning_solves)
            },
        );
    }

    // A bulk load exceeds the delta threshold: one recompute, by design.
    let mut bulk = DeltaBatch::new();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..4000 {
        bulk.push_insert("S", [rng.gen_range(0..200), rng.gen_range(0..200)]);
    }
    let bs = view.apply_delta(&bulk).expect("bulk load");
    println!(
        "\nbulk load of {} rows: full_recomputes={} (threshold fallback), work {}",
        bulk.rows(),
        bs.full_recomputes,
        bs.join_work
    );

    let total = view.stats();
    println!(
        "\nlifetime: {} batches, {} delta joins, {} recomputes, \
         {} tuples touched, join work {}",
        total.batches,
        total.delta_joins,
        total.full_recomputes,
        total.tuples_touched(),
        total.join_work
    );
    println!(
        "prepared once: {} lattice presentation(s), {} total solves",
        prepared.prep_stats().lattice_presentations,
        prepared.prep_stats().solves()
    );
}
