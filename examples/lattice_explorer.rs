//! Explore the FD lattice of a query: closed sets, structural class
//! (distributive / normal / M3-obstructed), and every bound the paper
//! defines, side by side.
//!
//! ```sh
//! cargo run --example lattice_explorer
//! ```

use fdjoin::bigint::{rat, Rational};
use fdjoin::bounds::chain::best_chain_bound;
use fdjoin::bounds::llp::solve_llp;
use fdjoin::bounds::normal::is_normal_lattice;
use fdjoin::bounds::smproof::{scale_weights, search_good_sm_proof};
use fdjoin::query::{examples, Query};

fn report(name: &str, q: &Query, n: i64) {
    let pres = q.lattice_presentation();
    let lat = &pres.lattice;
    println!("── {name}: Q :- {}", q.display_body());
    println!(
        "   lattice: {} elements, {} atoms, {} co-atoms, {} join-irreducibles",
        lat.len(),
        lat.atoms().len(),
        lat.coatoms().len(),
        lat.join_irreducibles().len()
    );
    let class = if lat.is_distributive() {
        "distributive (chain bound tight, Cor 5.15)"
    } else if is_normal_lattice(lat, &pres.inputs) {
        "normal, non-distributive (quasi-product worst cases exist)"
    } else {
        "non-normal (M3 obstruction, Prop 4.10)"
    };
    println!("   class: {class}");

    let logs: Vec<Rational> = vec![rat(n, 1); q.atoms().len()];
    let llp = solve_llp(lat, &pres.inputs, &logs);
    println!(
        "   GLVV/LLP bound:  N^{:.4}  (log2 = {})",
        llp.value.to_f64() / n as f64,
        llp.value
    );
    match best_chain_bound(lat, &pres.inputs, &logs) {
        Some(cb) => println!(
            "   chain bound:     N^{:.4}  via chain {:?}",
            cb.log_bound.to_f64() / n as f64,
            cb.chain
                .elems
                .iter()
                .map(|&e| lat.name(e))
                .collect::<Vec<_>>()
        ),
        None => println!("   chain bound:     ∞ (no good chain)"),
    }
    let (qmul, d) = scale_weights(&llp.input_duals);
    let multiset: Vec<(usize, u64)> = pres
        .inputs
        .iter()
        .zip(&qmul)
        .filter(|(_, &m)| m > 0)
        .map(|(&e, &m)| (e, m))
        .collect();
    match search_good_sm_proof(lat, &multiset, d) {
        Some(p) => println!(
            "   SM proof:        good sequence with {} steps (d = {d})",
            p.steps.len()
        ),
        None => println!("   SM proof:        none — CSMA required (Example 5.31 situation)"),
    }
    println!();
}

fn main() {
    println!("per-query lattice analysis (uniform input size N = 2^6)\n");
    report("triangle (no FDs)", &examples::triangle(), 6);
    report("Fig 1 UDF query", &examples::fig1_udf(), 6);
    report("simple-FD path", &examples::simple_fd_path(), 6);
    report("composite key", &examples::composite_key(), 6);
    report("M3 query", &examples::m3_query(), 6);
    report("Fig 4 query", &examples::fig4_query(), 6);
    report("Fig 9 query", &examples::fig9_query(), 6);
}
