//! Observability end to end: one traced serving request, exported three
//! ways, plus EXPLAIN / EXPLAIN ANALYZE.
//!
//! The flow mirrors a serving deployment: attach one [`Observer`] to the
//! engine and the executor, wrap a request in a caller-defined `request`
//! root span, prepare + submit a batch, and then read everything back —
//! the span tree (text and JSON-lines), the metrics registry (Prometheus
//! text and JSON), and the planner's own EXPLAIN report. Every export is
//! validated with the checkers shipped in `fdjoin::obs`, the same ones CI
//! runs over this example's output.
//!
//! Run with: `cargo run --example observability`

use fdjoin::core::{Engine, ExecOptions};
use fdjoin::exec::Executor;
use fdjoin::instances::random_instance;
use fdjoin::obs::{
    export_jsonl, render_text_tree, validate_json, validate_jsonl, validate_prometheus, Observer,
    SpanKind,
};
use fdjoin::query::examples;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // One recorder for the whole stack: engine, prepared queries, and the
    // executor all emit into it (clones share the ring and the registry).
    let obs = Observer::enabled();

    // The Fig. 4 query (Examples 5.18–5.20): chain bound N^{3/2}, LLP
    // optimum N^{4/3} — a query where the planner has real work to trace.
    let q = examples::fig4_query();
    let mut rng = StdRng::seed_from_u64(7);
    let dbs = Arc::new(vec![
        random_instance(&q, &mut rng, 600, 100),
        random_instance(&q, &mut rng, 600, 90),
        random_instance(&q, &mut rng, 600, 80),
    ]);

    // --- one request, one span tree -------------------------------------
    let engine = Engine::new().observe(obs.clone());
    let exec = Executor::with_threads(2).observe(obs.clone());
    let batch = {
        // A caller-defined root: prepare and submit both nest under it, so
        // the whole request — prepare → index builds → solves — is one
        // coherent tree even though the solves ran on pool workers.
        let mut request = obs.span(SpanKind::Request, "serve fig4");
        let prepared = Arc::new(engine.prepare(&q));
        let batch = exec.submit(&prepared, &dbs, &ExecOptions::new()).wait();
        request.field("databases", batch.stats.databases);
        request.field("output_tuples", batch.stats.output_tuples);
        batch
    };
    println!("batch: {}", batch.stats);
    for (i, r) in batch.results.iter().enumerate() {
        let r = r.as_ref().expect("fig4 executes on random instances");
        println!("  db{i}: {} via {}", r.output.len(), r.algorithm_used);
    }

    // --- the span tree, two exports -------------------------------------
    let spans = obs.drain_spans();
    println!("\nspan tree ({} spans):", spans.len());
    print!("{}", render_text_tree(&spans));

    let jsonl = export_jsonl(&spans);
    let lines = validate_jsonl(&jsonl).expect("exported JSONL parses");
    println!("JSON-lines export: {lines} valid records");

    // --- the metrics registry, two exports ------------------------------
    let prom = obs.metrics().to_prometheus();
    validate_prometheus(&prom).expect("exposition is well-formed");
    println!("\nmetrics (Prometheus exposition):");
    for line in prom.lines().filter(|l| !l.starts_with('#')) {
        println!("  {line}");
    }
    let json = obs.metrics().to_json();
    validate_json(&json).expect("JSON snapshot parses");

    // --- EXPLAIN / EXPLAIN ANALYZE --------------------------------------
    // Needs no observer at all: ANALYZE traces its one execution under a
    // private recorder and renders the tree inline.
    let prepared = Engine::new().prepare(&q);
    let report = prepared.explain_analyze(&dbs[0]).unwrap();
    println!("\n{report}");
}
