//! Inspect the proof objects behind the algorithms: dual certificates of the
//! LLP, SM-proof sequences with their goodness labeling, and CSM sequences —
//! the paper's "turn a proof into an algorithm" principle made visible.
//!
//! ```sh
//! cargo run --example proof_sequences
//! ```

use fdjoin::bigint::{rat, Rational};
use fdjoin::bounds::cllp::{solve_cllp, DegreePair};
use fdjoin::bounds::csm::{csm_sequence, CsmRule};
use fdjoin::bounds::llp::solve_llp;
use fdjoin::bounds::smproof::{
    check_goodness, scale_weights, search_good_sm_proof, search_sm_proof,
};
use fdjoin::query::examples;

fn main() {
    // ------- Fig 4: a good SM proof exists (Examples 5.20/5.25/5.27).
    let q = examples::fig4_query();
    let pres = q.lattice_presentation();
    let lat = &pres.lattice;
    let logs: Vec<Rational> = vec![rat(3, 1); 4];
    let llp = solve_llp(lat, &pres.inputs, &logs);
    println!("Fig 4 query: LLP = {} = (4/3)·n", llp.value);
    let (qmul, d) = scale_weights(&llp.input_duals);
    println!("  dual weights scaled: q = {qmul:?}, d = {d}");
    let multiset: Vec<(usize, u64)> = pres
        .inputs
        .iter()
        .zip(&qmul)
        .filter(|(_, &m)| m > 0)
        .map(|(&e, &m)| (e, m))
        .collect();
    let proof = search_good_sm_proof(lat, &multiset, d).expect("Example 5.20");
    println!("  good SM proof ({} steps):", proof.steps.len());
    for s in &proof.steps {
        println!(
            "    h({}) + h({}) ≥ h({}) + h({})",
            lat.name(s.x),
            lat.name(s.y),
            lat.name(lat.join(s.x, s.y)),
            lat.name(lat.meet(s.x, s.y)),
        );
    }
    println!("  goodness: {:?}\n", check_goodness(lat, &proof));

    // ------- Fig 9: no SM proof; CSM sequence instead (Example 5.31).
    let q = examples::fig9_query();
    let pres = q.lattice_presentation();
    let lat = &pres.lattice;
    println!("Fig 9 query: h(M)+h(N)+h(O) ≥ 2·h(1̂) — SM proof search:");
    let multiset: Vec<(usize, u64)> = pres.inputs.iter().map(|&e| (e, 1)).collect();
    match search_sm_proof(lat, &multiset, 2) {
        Some(_) => println!("  unexpectedly found one!"),
        None => println!("  exhaustive search confirms: NO SM-proof exists"),
    }
    let pairs: Vec<DegreePair> = pres
        .inputs
        .iter()
        .map(|&r| DegreePair::cardinality(lat, r, rat(2, 1)))
        .collect();
    let sol = solve_cllp(lat, &pairs);
    println!(
        "  CLLP OPT = {} = (3/2)·n; dual c = {:?}",
        sol.value,
        sol.pair_duals
            .iter()
            .map(|c| c.to_f64())
            .collect::<Vec<_>>()
    );
    let seq = csm_sequence(lat, &pairs, &sol).expect("Theorem 5.34");
    println!("  CSM sequence (cf. the paper's rules (29)–(36)):");
    for r in &seq.rules {
        match *r {
            CsmRule::Cd { x, y } => {
                println!(
                    "    CD: h({0}) → h({0}|{1}) + h({1})",
                    lat.name(y),
                    lat.name(x)
                )
            }
            CsmRule::Cc { pair } => println!(
                "    CC: h({}) + h({}|{}) → h({})",
                lat.name(pairs[pair].lo),
                lat.name(pairs[pair].hi),
                lat.name(pairs[pair].lo),
                lat.name(pairs[pair].hi)
            ),
            CsmRule::Sm { a, b } => println!(
                "    SM: h({}) + h({}|{}) → h({})",
                lat.name(a),
                lat.name(b),
                lat.name(lat.meet(a, b)),
                lat.name(lat.join(a, b))
            ),
        }
    }
}
