//! Quickstart: build the triangle query, load a small graph, compute its
//! AGM bound, and run the worst-case-optimal algorithms.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fdjoin::bigint::Rational;
use fdjoin::core::{chain_join, generic_join, GjOptions};
use fdjoin::query::Query;
use fdjoin::storage::{Database, Relation};

fn main() {
    // Q(x,y,z) :- R(x,y), S(y,z), T(z,x) — the triangle query.
    let mut b = Query::builder();
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("R", &[x, y]).atom("S", &[y, z]).atom("T", &[z, x]);
    let q = b.build();
    println!("query: Q :- {}", q.display_body());

    // A small directed graph: triangles (1,2,3) and (1,2,4), plus noise.
    let edges: Vec<[u64; 2]> =
        vec![[1, 2], [2, 3], [3, 1], [2, 4], [4, 1], [5, 6], [6, 7]];
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(vec![0, 1], edges.clone()));
    db.insert("S", Relation::from_rows(vec![1, 2], edges.clone()));
    db.insert("T", Relation::from_rows(vec![2, 0], edges));

    // The AGM bound for the actual sizes.
    let logs: Vec<Rational> = q
        .atoms()
        .iter()
        .map(|a| Rational::log2_approx(db.relation(&a.name).len() as u64, 16))
        .collect();
    let agm = fdjoin::bounds::agm::agm_log_bound(&q, &logs).expect("covered");
    println!(
        "AGM bound: 2^{:.3} ≈ {:.1} tuples (edge cover weights {:?})",
        agm.value.to_f64(),
        agm.value.to_f64().exp2(),
        agm.weights.iter().map(|w| w.to_f64()).collect::<Vec<_>>()
    );

    // Run Generic-Join (worst-case optimal) and the Chain Algorithm.
    let (out, stats) = generic_join(&q, &db, &GjOptions::default());
    println!("generic join: {} triangles, {} probes", out.len(), stats.probes);
    for row in out.rows() {
        println!("  (x={}, y={}, z={})", row[0], row[1], row[2]);
    }
    let ca = chain_join(&q, &db).expect("Boolean algebra always has good chains");
    println!(
        "chain algorithm: {} triangles via chain of {} steps, bound 2^{:.2}",
        ca.output.len(),
        ca.chain.steps(),
        ca.log_bound.to_f64()
    );
    assert_eq!(ca.output, out);
}
