//! Quickstart: build the triangle query, load a small graph, compute its
//! AGM bound, and run it through the unified `Engine` — once with the
//! bound-driven auto-planner, once pinned to Generic-Join.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fdjoin::bigint::Rational;
use fdjoin::core::{Algorithm, Engine, ExecOptions};
use fdjoin::query::Query;
use fdjoin::storage::{Database, Relation};

fn main() {
    // Q(x,y,z) :- R(x,y), S(y,z), T(z,x) — the triangle query.
    let mut b = Query::builder();
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("R", &[x, y]).atom("S", &[y, z]).atom("T", &[z, x]);
    let q = b.build();
    println!("query: Q :- {}", q.display_body());

    // A small directed graph: triangles (1,2,3) and (1,2,4), plus noise.
    let edges: Vec<[u64; 2]> = vec![[1, 2], [2, 3], [3, 1], [2, 4], [4, 1], [5, 6], [6, 7]];
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(vec![0, 1], edges.clone()));
    db.insert("S", Relation::from_rows(vec![1, 2], edges.clone()));
    db.insert("T", Relation::from_rows(vec![2, 0], edges));

    // The AGM bound for the actual sizes.
    let logs: Vec<Rational> = q
        .atoms()
        .iter()
        .map(|a| Rational::log2_approx(db.relation(&a.name).unwrap().len() as u64, 16))
        .collect();
    let agm = fdjoin::bounds::agm::agm_log_bound(&q, &logs).expect("covered");
    println!(
        "AGM bound: 2^{:.3} ≈ {:.1} tuples (edge cover weights {:?})",
        agm.value.to_f64(),
        agm.value.to_f64().exp2(),
        agm.weights.iter().map(|w| w.to_f64()).collect::<Vec<_>>()
    );

    // Prepare once, execute as often as you like: the lattice presentation
    // and all per-size planning are cached inside the PreparedQuery.
    let engine = Engine::new();
    let prepared = engine.prepare(&q);

    let auto = prepared
        .execute(&db, &ExecOptions::new())
        .expect("complete database");
    println!(
        "auto-planner chose {}: {} triangles, bound 2^{:.2}, {} probes",
        auto.algorithm_used,
        auto.output.len(),
        auto.predicted_log_bound
            .as_ref()
            .map(|b| b.to_f64())
            .unwrap_or(f64::NAN),
        auto.stats.probes
    );
    for row in auto.output.rows() {
        println!("  (x={}, y={}, z={})", row[0], row[1], row[2]);
    }

    // Pin an explicit algorithm through the same API.
    let gj = prepared
        .execute(&db, &ExecOptions::new().algorithm(Algorithm::GenericJoin))
        .expect("complete database");
    println!(
        "generic join agrees: {} triangles, {} probes",
        gj.output.len(),
        gj.stats.probes
    );
    assert_eq!(auto.output, gj.output);
    println!("planning work done once: {:?}", prepared.prep_stats());
}
