//! Serving-layer tour: prepare once, execute everywhere.
//!
//! Simulates a multi-tenant serving scenario: several tenants issue
//! *structurally identical* queries over their own schemas (different
//! variable and relation names), each against many databases. A shared
//! `PlanCache` keyed by lattice-presentation isomorphism means only the
//! first tenant pays for planning; the batch driver then fans each
//! prepared query across its databases concurrently.
//!
//! Run with: `cargo run --example serving`

use fdjoin::core::{Engine, ExecOptions, PlanCache};
use fdjoin::exec::{ExecuteBatch, Executor};
use fdjoin::query::Query;
use fdjoin::storage::Database;
use std::sync::Arc;

/// Tenant `t`'s triangle query: same shape, tenant-specific names, and a
/// tenant-specific atom rotation (the cache must see through both).
fn tenant_query(t: usize) -> Query {
    let mut b = Query::builder();
    let names = [format!("a{t}"), format!("b{t}"), format!("c{t}")];
    let v: Vec<u32> = names.iter().map(|n| b.var(n)).collect();
    let atoms = [
        (format!("Edges{t}"), [v[0], v[1]]),
        (format!("Links{t}"), [v[1], v[2]]),
        (format!("Ties{t}"), [v[2], v[0]]),
    ];
    for i in 0..3 {
        let (name, vars) = &atoms[(i + t) % 3];
        b.atom(name, vars);
    }
    b.build()
}

/// Tenant databases holding the *same* logical graph (so profiles across
/// tenants are isomorphic), keyed by each tenant's relation names. Role:
/// `Edges*` = 0, `Links*` = 1, `Ties*` = 2.
fn tenant_dbs(q: &Query, n: usize, seed: u64) -> Vec<Database> {
    use fdjoin::storage::Relation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    (0..n)
        .map(|i| {
            let mut db = Database::new();
            for a in q.atoms() {
                let role = match a.name.as_bytes()[0] {
                    b'E' => 0,
                    b'L' => 1,
                    _ => 2,
                };
                // Per-(database, role) rows, independent of the tenant.
                let mut rng = StdRng::seed_from_u64(seed + 101 * i as u64 + role);
                let rows: Vec<[u64; 2]> = (0..14)
                    .map(|_| [rng.gen_range(0..8), rng.gen_range(0..8)])
                    .collect();
                db.insert(&a.name, Relation::from_rows(a.vars.clone(), rows));
            }
            db
        })
        .collect()
}

fn main() {
    let cache = Arc::new(PlanCache::new());
    let engine = Engine::with_plan_cache(cache.clone());
    let opts = ExecOptions::new();

    println!("=== cross-query plan reuse ===");
    let mut prepared = Vec::new();
    for t in 0..3 {
        let q = tenant_query(t);
        let p = engine.prepare(&q);
        prepared.push((q, p));
    }
    for (t, (q, p)) in prepared.iter().enumerate() {
        // Execute once so the per-size-profile plans materialize.
        let dbs = tenant_dbs(q, 1, 42);
        let r = p.execute(&dbs[0], &opts).unwrap();
        let s = p.prep_stats();
        println!(
            "tenant {t}: {:28} ran {} ({}), solves={}, shared hits={}",
            q.display_body(),
            r.algorithm_used,
            r.auto
                .as_ref()
                .map(|d| d.reason.to_string())
                .unwrap_or_default(),
            s.solves(),
            s.shared_hits,
        );
    }
    let cs = cache.stats();
    println!(
        "cache: {} shape(s), {} hit(s), {} miss(es)  — tenants 1,2 planned for free\n",
        cs.shapes, cs.shape_hits, cs.shape_misses
    );

    println!("=== batch execution (scoped work-stealing) ===");
    let (q0, p0) = &prepared[0];
    let dbs = tenant_dbs(q0, 24, 7);
    let batch = p0.execute_batch(&dbs, &opts);
    println!(
        "{} databases: {} ok / {} failed, {} output tuples, {:.1?} wall, {:.0} db/s",
        batch.stats.databases,
        batch.stats.succeeded,
        batch.stats.failed,
        batch.stats.output_tuples,
        batch.stats.wall,
        batch.stats.throughput(),
    );
    // One solve per *distinct canonical size profile*; profiles that are
    // automorphic images of an earlier one rehydrate from the shared cache
    // (shared_hits), everything else is a pure local-cache read.
    println!("prep stats after batch: {:?}\n", p0.prep_stats());

    println!("=== persistent executor (submit / wait) ===");
    let exec = Executor::new();
    let (q1, _) = &prepared[1];
    let p1 = Arc::new(engine.prepare(q1));
    let dbs1 = Arc::new(tenant_dbs(q1, 16, 99));
    let h1 = exec.submit(&p1, &dbs1, &opts);
    let h2 = exec.submit(&p1, &dbs1, &opts); // overlapping batches
    let (b1, b2) = (h1.wait(), h2.wait());
    println!(
        "two overlapping batches on {} workers: {}+{} databases, {:.0} + {:.0} db/s",
        exec.threads(),
        b1.stats.databases,
        b2.stats.databases,
        b1.stats.throughput(),
        b2.stats.throughput(),
    );
    assert_eq!(
        b1.results.len(),
        b2.results.len(),
        "same batch, same results"
    );
}
