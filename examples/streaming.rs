//! Streaming enumeration tour: first rows on demand, pruned aggregates,
//! resumable pagination, and budgeted serving.
//!
//! A Fig. 4 instance is enumerated through a `ResultStream` cursor instead
//! of a materializing join: the first rows arrive without computing the
//! rest, `exists`/`count`/`limit` prune the descent (visibly less work
//! than a full run), a checkpoint pages through the answer across cursor
//! lifetimes — and goes stale the moment the data changes — and the
//! serving layer drives the same cursor under row/deadline budgets with
//! estimate-driven admission control.
//!
//! Run with: `cargo run --example streaming`

use fdjoin::bigint::Rational;
use fdjoin::core::{Engine, ExecOptions};
use fdjoin::exec::{Executor, StreamBudget, StreamEnd};
use fdjoin::query::examples;
use fdjoin::stream::{ResultStream, StreamError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let q = examples::fig4_query();
    let mut rng = StdRng::seed_from_u64(12);
    let db = Arc::new(fdjoin::instances::random_instance(&q, &mut rng, 120, 85));
    let prepared = Arc::new(Engine::new().prepare(&q));

    // ---- enumeration class: is constant delay guaranteed? --------------
    let class = prepared.enumeration_class();
    println!("query: {}", q.display_body());
    println!("enumeration class: {class}");
    for other in [examples::triangle(), examples::simple_fd_path()] {
        println!(
            "  (compare {} → {})",
            other.display_body(),
            other.enumeration_class()
        );
    }

    // ---- first rows, no materialization --------------------------------
    let mut stream = ResultStream::open(&prepared, &db).expect("open");
    print!("\nfirst rows:");
    for _ in 0..3 {
        match stream.next_row() {
            Some(row) => print!(" {row:?}"),
            None => break,
        }
    }
    let first_work = stream.stats().work();
    println!("\nwork after 3 rows: {first_work}");

    // ---- pruned aggregates vs. the full join ---------------------------
    let mut probe = ResultStream::open(&prepared, &db).expect("open");
    let found = probe.exists();
    let exists_work = probe.stats().work();
    let full = prepared.execute(&db, &ExecOptions::new()).expect("execute");
    println!(
        "exists = {found}: {exists_work} work vs {} for the full join",
        full.stats.work()
    );
    let mut counter = ResultStream::open(&prepared, &db).expect("open");
    println!(
        "count  = {} (full join: {} rows)",
        counter.count(),
        full.output.len()
    );

    // ---- pagination with a resumable checkpoint ------------------------
    let mut page1 = ResultStream::open(&prepared, &db).expect("open");
    let rows1 = page1.limit(4);
    let cursor = page1.checkpoint();
    drop(page1); // the cursor outlives the stream: plain data + versions
    let mut page2 = ResultStream::resume(&prepared, &db, &cursor).expect("resume");
    let rows2 = page2.limit(4);
    println!(
        "\npage 1: {} rows, page 2 (resumed at row {}): {} rows",
        rows1.len(),
        cursor.rows_streamed(),
        rows2.len()
    );

    // A checkpoint is validated against relation versions: mutate the
    // database and the stale cursor is rejected instead of paging wrong.
    let mut drifted = (*db).clone();
    drifted
        .relation_mut("T0_abc")
        .expect("T0_abc")
        .apply_delta([[999u64, 999, 999]], [] as [&[u64]; 0]);
    match ResultStream::resume(&prepared, &drifted, &cursor) {
        Err(StreamError::StaleCheckpoint { relation }) => {
            println!("after an update to {relation}: checkpoint correctly stale");
        }
        other => panic!("expected a stale checkpoint, got {other:?}"),
    }

    // ---- budgeted serving ----------------------------------------------
    let exec = Executor::new();
    let outcome = exec
        .submit_stream(&prepared, &db, StreamBudget::new().max_rows(10))
        .wait()
        .expect("admitted");
    println!(
        "\nserved {} rows, ended by {:?} ({} µs, class {})",
        outcome.rows.len(),
        outcome.end,
        outcome.wall.as_micros(),
        outcome.enumeration
    );
    assert_eq!(outcome.end, StreamEnd::RowBudget);

    // Admission control: a log₂-zero output budget rejects this instance
    // before any cursor or trie work is spent.
    let rejected = exec
        .submit_stream(
            &prepared,
            &db,
            StreamBudget::new().admit_below(Rational::zero()),
        )
        .wait();
    println!("zero-budget admission: {}", rejected.unwrap_err());
}
