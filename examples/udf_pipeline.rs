//! The paper's motivating example (Sec. 1.1, Eq. 1): user-defined functions
//! as functional dependencies.
//!
//! `Q(x,y,z,u) :- R(x,y), S(y,z), T(z,u), u = f(x,z), x = g(y,u)`
//!
//! The two UDFs add FDs `xz → u` and `yu → x`, dropping the worst-case
//! output from `N²` to `N^{3/2}` — and the FD-aware Chain Algorithm runs
//! within that budget while FD-oblivious processing does `Ω(N²)` work.
//!
//! ```sh
//! cargo run --release --example udf_pipeline
//! ```

use fdjoin::core::{binary_join, chain_join, generic_join};
use fdjoin::instances::fig1_adversarial;
use fdjoin::query::examples;

fn main() {
    let q = examples::fig1_udf();
    println!("query: Q :- {}\n", q.display_body());
    println!(
        "{:>6} {:>14} {:>14} {:>14}   (deterministic work counters)",
        "N", "chain algo", "generic join", "binary join"
    );
    for exp in [6u32, 8, 10, 12] {
        let n = 1u64 << exp;
        let db = fig1_adversarial(n);
        let ca = chain_join(&q, &db).expect("good chain exists");
        let gj = generic_join(&q, &db).expect("complete database");
        let bj = binary_join(&q, &db).expect("complete database");
        assert_eq!(ca.output, gj.output);
        assert_eq!(ca.output, bj.output);
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            n,
            ca.stats.work(),
            gj.stats.work(),
            bj.stats.work()
        );
    }
    println!("\nchain algorithm work grows ~N^1.5; both baselines grow ~N^2");
    println!("(the chain used: climb y, then yz, then close to xyzu — Example 5.5)");
}
