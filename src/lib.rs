//! # fdjoin — Computing Join Queries with Functional Dependencies
//!
//! A from-scratch reproduction of Abo Khamis, Ngo & Suciu,
//! *"Computing Join Queries with Functional Dependencies"* (PODS 2016,
//! arXiv:1604.00111): worst-case-optimal join processing whose runtime is
//! governed by the **GLVV entropy bound** rather than the FD-oblivious AGM
//! bound.
//!
//! For the system-level view — the crate map, the data flow from lattice
//! presentations through bounds, plans, the cross-query `PlanCache`, the
//! serving layer, and incremental deltas, and where the data-dependent
//! cost model sits in the planning pipeline — see
//! [`ARCHITECTURE.md`](https://github.com/fdjoin/fdjoin/blob/main/ARCHITECTURE.md)
//! at the repository root.
//!
//! ## Quick start
//!
//! The front door is [`core::Engine`]: one entry point over all six join
//! algorithms, with a bound-driven auto-planner choosing among them the way
//! the paper's theorems dictate (chain bound tight ⇒ Chain Algorithm; good
//! SM-proof sequence ⇒ SMA; otherwise CSMA).
//!
//! ```
//! use fdjoin::core::{Engine, ExecOptions};
//! use fdjoin::query::Query;
//! use fdjoin::storage::{Database, Relation};
//!
//! // The triangle query R(x,y) ⋈ S(y,z) ⋈ T(z,x).
//! let mut b = Query::builder();
//! let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
//! b.atom("R", &[x, y]).atom("S", &[y, z]).atom("T", &[z, x]);
//! let q = b.build();
//!
//! let mut db = Database::new();
//! db.insert("R", Relation::from_rows(vec![0, 1], [[1, 2]]));
//! db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3]]));
//! db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1]]));
//!
//! let out = Engine::new().execute(&q, &db, &ExecOptions::new()).unwrap();
//! assert_eq!(out.output.len(), 1);
//! println!("ran {}, bound 2^{:?}", out.algorithm_used, out.predicted_log_bound);
//! ```
//!
//! For repeated executions, prepare once — the lattice presentation, chain
//! search, LLP solve, proof sequences, *and* the trie indexes every probe
//! runs through are computed once per size profile / relation version and
//! cached:
//!
//! ```
//! # use fdjoin::core::{Engine, ExecOptions};
//! # use fdjoin::storage::{Database, Relation};
//! # let q = fdjoin::query::examples::triangle();
//! # let mut db = Database::new();
//! # db.insert("R", Relation::from_rows(vec![0, 1], [[1, 2]]));
//! # db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3]]));
//! # db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1]]));
//! let prepared = Engine::new().prepare(&q);
//! let first = prepared.execute(&db, &ExecOptions::new()).unwrap();
//! let planning_after_first = prepared.prep_stats();
//! let second = prepared.execute(&db, &ExecOptions::new()).unwrap();
//! assert_eq!(first.output, second.output);
//! let window = prepared.prep_stats().since(&planning_after_first);
//! assert_eq!(window.solves(), 0); // plans reused
//! assert_eq!(window.index_builds, 0); // trie indexes reused
//! assert!(window.index_hits > 0);
//! ```
//!
//! Explicit algorithms, degree bounds, variable/atom orders, and chain
//! overrides all go through [`core::ExecOptions`]; every run returns the
//! same [`core::JoinResult`] and fails with the same [`core::JoinError`].
//!
//! Auto-selection is not only bound-driven but *data*-driven: storage
//! maintains exact per-prefix degree/skew statistics
//! ([`storage::RelationStats`]) and [`core::cost`] turns them into branch
//! estimates that break ties the worst-case bounds cannot — two databases
//! with identical size profiles can (correctly) run different algorithms,
//! with the decision recorded in [`core::AutoDecision`]. See
//! `examples/cost_model.rs` and `tests/cost_model.rs`.
//!
//! For serving workloads, [`exec`] adds batched/concurrent execution
//! ([`exec::ExecuteBatch`], [`exec::Executor`]) and a cross-query plan
//! cache keyed by lattice-presentation isomorphism
//! ([`core::PlanCache`] via [`core::Engine::with_plan_cache`]); see
//! `examples/serving.rs`.
//!
//! ## Streaming enumeration
//!
//! When the consumer wants the first rows — or just a count, an existence
//! check, or a page — materializing the whole join is wasted work.
//! [`stream`] enumerates answers on demand: [`stream::ResultStream`] is a
//! cursor over the same cached trie indexes the batch algorithms probe,
//! suspending between rows as plain per-depth snapshots. `limit`/`offset`/
//! `exists`/`count` prune the enumeration (strictly less
//! [`core::Stats::deterministic`] work than a full run), checkpoints make
//! a pagination cursor that survives the stream — and is rejected as stale
//! if the underlying data changed — and [`query::EnumerationClass`]
//! reports whether the per-row delay is provably constant
//! (Carmeli–Kröll: (FD-extended) acyclicity). The serving layer wraps
//! this as [`exec::Executor::submit_stream`] with deadline/row/byte
//! budgets ([`exec::StreamBudget`]) and estimate-driven admission control;
//! see `examples/streaming.rs` and `tests/streaming.rs`.
//!
//! ## Incremental maintenance
//!
//! When relations change by small deltas, [`delta`] maintains a
//! materialized answer instead of re-executing: [`delta::DeltaBatch`]
//! carries per-relation inserts/deletes, [`delta::ApplyDelta`] puts
//! `materialize`/`apply_delta` on a prepared query, and
//! [`delta::DeltaStats`] makes the saved work observable — see
//! `examples/incremental.rs` and `tests/differential.rs`.
//!
//! ```
//! use fdjoin::core::Engine;
//! use fdjoin::delta::{ApplyDelta, DeltaBatch, DeltaOptions};
//! use fdjoin::storage::{Database, Relation};
//! use std::sync::Arc;
//!
//! let q = fdjoin::query::examples::triangle();
//! let mut db = Database::new();
//! let edges: Vec<[u64; 2]> = (0..20).map(|k| [k, k + 1]).collect();
//! db.insert("R", Relation::from_rows(vec![0, 1], edges.clone()));
//! db.insert("S", Relation::from_rows(vec![1, 2], edges.clone()));
//! db.insert("T", Relation::from_rows(vec![2, 0], edges));
//!
//! let prepared = Arc::new(Engine::new().prepare(&q));
//! let mut view = prepared.materialize(db, DeltaOptions::new()).unwrap();
//!
//! // One inserted edge closes the triangle 1-2-3: a delta join against
//! // the current S and T, not a recompute of the whole join.
//! let stats = view
//!     .apply_delta(&DeltaBatch::new().insert("T", [3, 1]))
//!     .unwrap();
//! assert!(view.output().contains_row(&[1, 2, 3]));
//! assert_eq!(stats.full_recomputes, 0);
//! assert_eq!(stats.delta_joins, 1);
//! ```
//!
//! ## Observability
//!
//! [`obs`] is the self-contained (std-only, dependency-free) tracing and
//! metrics layer the whole serving stack emits through. One
//! [`obs::Observer`] handle — attached with [`core::Engine::observe`] and
//! carried by every `PreparedQuery` it prepares — turns on structured
//! spans (`prepare`, `index_build`, `solve`, `batch`/`submit`,
//! `stream_advance`, `delta_apply`, parent-linked across the worker pool)
//! and a process-wide metrics registry (counters + log₂-bucketed latency
//! histograms, exported as Prometheus text or JSON). Disabled — the
//! default — every emit point is one branch. EXPLAIN / EXPLAIN ANALYZE
//! render the planner's view and a traced execution without any observer
//! at all:
//!
//! ```
//! use fdjoin::core::Engine;
//! use fdjoin::storage::{Database, Relation};
//!
//! let q = fdjoin::query::examples::triangle();
//! let mut db = Database::new();
//! db.insert("R", Relation::from_rows(vec![0, 1], [[1, 2], [2, 3]]));
//! db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3], [3, 1]]));
//! db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1], [1, 2]]));
//!
//! let prepared = Engine::new().prepare(&q);
//! let plan = prepared.explain(&db).unwrap();
//! let text = plan.to_string();
//! assert!(text.contains("EXPLAIN"));
//! assert!(text.contains("bounds(log2):"));
//! assert!(text.contains("auto:"));
//!
//! // ANALYZE runs the query once under a private trace and appends the
//! // observed algorithm, counters, and span tree.
//! let analyzed = prepared.explain_analyze(&db).unwrap();
//! let report = analyzed.to_string();
//! assert!(report.contains("ANALYZE"));
//! assert!(report.contains("solve"));
//! ```
//!
//! See `examples/observability.rs` for the full span-tree / metrics-export
//! loop and ARCHITECTURE.md § Observability for the span taxonomy, metric
//! names, and the EXPLAIN grammar.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`bigint`] | exact big integers & rationals |
//! | [`lp`] | exact two-phase simplex with duals |
//! | [`lattice`] | closed-set lattices, Möbius, normality, canonical fingerprints |
//! | [`storage`] | relations, indexes, UDFs |
//! | [`query`] | queries, FDs, hypergraphs, lattice presentations |
//! | [`bounds`] | AGM / GLVV / chain / SM / CLLP bounds and proof objects |
//! | [`core`] | the `Engine` + Chain Algorithm, SMA, CSMA, and baselines |
//! | [`core::engine`] | `Engine`, `PreparedQuery`, `Algorithm`, `ExecOptions`, `JoinResult`, `JoinError` |
//! | [`core::cost`] | data-dependent branch estimates from measured degree/skew statistics |
//! | [`stream`] | cursor-based result streaming, pagination checkpoints, enumeration classes |
//! | [`exec`] | serving layer: batch/concurrent drivers, budgeted streaming, shared plan cache |
//! | [`delta`] | incremental maintenance: delta batches, materialized views, delta stats |
//! | [`obs`] | observability: structured spans, metrics registry, JSONL/Prometheus export |
//! | [`instances`] | worst-case and random instance generators |

pub use fdjoin_bigint as bigint;
pub use fdjoin_bounds as bounds;
pub use fdjoin_core as core;
pub use fdjoin_delta as delta;
pub use fdjoin_exec as exec;
pub use fdjoin_instances as instances;
pub use fdjoin_lattice as lattice;
pub use fdjoin_lp as lp;
pub use fdjoin_obs as obs;
pub use fdjoin_query as query;
pub use fdjoin_storage as storage;
pub use fdjoin_stream as stream;
