//! Acceptance tests for the shared access-path layer: trie indexes are
//! built once per (relation version, column order) and provably reused —
//! across repeated executions of one `PreparedQuery`, across
//! `execute_batch` workers, and across delta batches — with rebuilds
//! happening exactly when a relation's content version moves.

use fdjoin::core::{Algorithm, Engine, ExecOptions};
use fdjoin::delta::{ApplyDelta, DeltaBatch, DeltaOptions};
use fdjoin::exec::ExecuteBatch;
use fdjoin::query::examples;
use fdjoin::storage::{Database, Relation};
use std::sync::Arc;

fn fig1_db() -> Database {
    let mut db = Database::new();
    db.insert(
        "R",
        Relation::from_rows(vec![0, 1], [[1, 1], [2, 1], [1, 2], [3, 2]]),
    );
    db.insert(
        "S",
        Relation::from_rows(vec![1, 2], [[1, 1], [2, 1], [1, 2]]),
    );
    db.insert(
        "T",
        Relation::from_rows(vec![2, 3], [[1, 1], [1, 2], [2, 1], [2, 3]]),
    );
    db.udfs
        .register(fdjoin::lattice::VarSet::from_vars([0, 2]), 3, |v| v[0]);
    db.udfs
        .register(fdjoin::lattice::VarSet::from_vars([1, 3]), 0, |v| v[1]);
    db
}

/// The headline acceptance criterion: a second execution of the same
/// `PreparedQuery` builds **zero** new indexes, for every algorithm.
#[test]
fn second_execution_builds_zero_indexes() {
    let q = examples::fig1_udf();
    let db = fig1_db();
    for alg in [
        Algorithm::Chain,
        Algorithm::Sma,
        Algorithm::Csma,
        Algorithm::GenericJoin,
        Algorithm::BinaryJoin,
        Algorithm::Naive,
        Algorithm::Auto,
    ] {
        let prepared = Engine::new().prepare(&q);
        let opts = ExecOptions::new().algorithm(alg);
        let first = prepared.execute(&db, &opts).unwrap();
        let warm = prepared.prep_stats();
        let second = prepared.execute(&db, &opts).unwrap();
        let window = prepared.prep_stats().since(&warm);
        assert_eq!(
            window.index_builds, 0,
            "{alg}: second execution must not build any index"
        );
        assert_eq!(first.output, second.output, "{alg}");
        // Per-run stats tell the same story: the second run's acquisitions
        // are all hits.
        assert_eq!(second.stats.index_builds, 0, "{alg}");
        assert_eq!(second.stats.index_hits, first.stats.index_gets(), "{alg}");
    }
}

/// Index reuse across `execute_batch`: the concurrent batch over already
/// served databases acquires every index from the cache.
#[test]
fn batch_execution_reuses_indexes() {
    let q = examples::triangle();
    let mut dbs = Vec::new();
    for k in 0..4u64 {
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_rows(vec![0, 1], [[1, 2], [2, 3], [k + 3, 1]]),
        );
        db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3], [3, 1]]));
        db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1], [1, 2]]));
        dbs.push(db);
    }
    let prepared = Engine::new().prepare(&q);
    let opts = ExecOptions::new();
    // Warm serially (4 databases × their relation versions).
    let serial: Vec<_> = dbs
        .iter()
        .map(|db| prepared.execute(db, &opts).unwrap())
        .collect();
    let warm = prepared.prep_stats();
    assert!(warm.index_builds > 0, "first pass builds the tries");
    // Two concurrent batch rounds over the same databases: zero rebuilds.
    for threads in [2, 4] {
        let batch = prepared.execute_batch_with(&dbs, &opts, threads);
        assert_eq!(batch.stats.failed, 0);
        for (r, s) in batch.results.iter().zip(&serial) {
            assert_eq!(r.as_ref().unwrap().output, s.output);
        }
    }
    let window = prepared.prep_stats().since(&warm);
    assert_eq!(window.index_builds, 0, "batch served entirely from cache");
    assert!(window.index_hits > 0);
}

/// Index reuse across delta batches, and rebuild-on-version-bump: a delta
/// that touches one relation invalidates only the entries whose derivation
/// read it; a no-change replay rebuilds nothing.
#[test]
fn delta_batches_rebuild_only_what_changed() {
    let q = examples::triangle();
    let mut db = Database::new();
    db.insert(
        "R",
        Relation::from_rows(vec![0, 1], [[1, 2], [2, 3], [4, 1]]),
    );
    db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3], [3, 1]]));
    db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1], [1, 2]]));

    let prepared = Arc::new(Engine::new().prepare(&q));
    // Pin the chain algorithm so every delta join replays the same plan
    // shape — the reuse below is then exactly "which relations' expanded
    // tries survived the delta".
    let opts = DeltaOptions::new().exec(ExecOptions::new().algorithm(Algorithm::Chain));
    let mut view = prepared.materialize(db, opts).unwrap();
    let after_materialize = prepared.prep_stats();
    assert!(after_materialize.index_builds > 0);

    // A delta touching R: its relations' versions move, so *some* indexes
    // rebuild — but strictly fewer than materialization built, because the
    // untouched relations' tries keep hitting.
    let delta = DeltaBatch::new().insert("R", [9u64, 2]);
    view.apply_delta(&delta).unwrap();
    let after_delta = prepared.prep_stats();
    let window = after_delta.since(&after_materialize);
    assert!(window.index_builds > 0, "R's version bump must rebuild");
    assert!(
        window.index_builds < after_materialize.index_builds,
        "untouched relations reuse their tries ({} rebuilt of {})",
        window.index_builds,
        after_materialize.index_builds
    );
    assert!(window.index_hits > 0, "S/T tries served from cache");

    // Replaying a no-op delta (same row again) leaves every version in
    // place: zero index builds across the whole delta pass.
    let replay = DeltaBatch::new().insert("R", [9u64, 2]);
    view.apply_delta(&replay).unwrap();
    let window = prepared.prep_stats().since(&after_delta);
    assert_eq!(
        window.index_builds, 0,
        "no content change ⇒ no version bump ⇒ no rebuild"
    );

    // The view still agrees with a fresh join.
    let fresh = prepared
        .execute(view.database(), &ExecOptions::new())
        .unwrap();
    assert_eq!(view.output(), &fresh.output);
}

/// The cache is engine-wide: a second `PreparedQuery` (same or different
/// query text) probing the same relation versions reuses the base tries
/// the first one built — while query-dependent *expanded* tries never
/// alias across queries (each carries its own expansion token).
#[test]
fn sibling_prepared_queries_share_base_tries() {
    let q = examples::triangle();
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(vec![0, 1], [[1, 2], [2, 3]]));
    db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3], [3, 1]]));
    db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1], [1, 2]]));
    let engine = Engine::new();
    let opts = ExecOptions::new().algorithm(Algorithm::GenericJoin);

    let first = engine.prepare(&q);
    let r1 = first.execute(&db, &opts).unwrap();
    assert!(r1.stats.index_builds > 0);

    // A sibling prepared from the same engine: Generic-Join probes only
    // base tries, which are shared by (name, version, order).
    let second = engine.prepare(&q);
    let r2 = second.execute(&db, &opts).unwrap();
    assert_eq!(r2.stats.index_builds, 0, "sibling reuses base tries");
    assert_eq!(r1.output, r2.output);
    // And the sibling's PrepStats window starts at its own prepare time.
    assert_eq!(second.prep_stats().index_builds, 0);
}

/// Clones share content versions until they diverge, so serving the same
/// logical database through a cloned handle costs no rebuilds.
#[test]
fn cloned_databases_share_indexes() {
    let q = examples::triangle();
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(vec![0, 1], [[1, 2], [2, 3]]));
    db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3], [3, 1]]));
    db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1], [1, 2]]));
    let prepared = Engine::new().prepare(&q);
    prepared.execute(&db, &ExecOptions::new()).unwrap();
    let warm = prepared.prep_stats();

    let clone = db.clone();
    prepared.execute(&clone, &ExecOptions::new()).unwrap();
    let window = prepared.prep_stats().since(&warm);
    assert_eq!(window.index_builds, 0, "clone shares every content version");

    // Mutating the clone diverges it; only then do rebuilds happen.
    let mut diverged = clone.clone();
    diverged
        .relation_mut("R")
        .unwrap()
        .apply_delta([[7u64, 8]], [] as [&[u64]; 0]);
    prepared.execute(&diverged, &ExecOptions::new()).unwrap();
    let window = prepared.prep_stats().since(&warm);
    assert!(window.index_builds > 0, "diverged content rebuilds");
}
