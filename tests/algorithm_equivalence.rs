//! Cross-algorithm equivalence: on random FD-respecting instances, every
//! algorithm (Chain, SMA, CSMA, Generic-Join with and without FD binding,
//! binary join) must produce exactly the naive evaluator's answer.

use fdjoin::core::{
    binary_join, chain_join, csma_join, generic_join, naive_join, sma_join, Algorithm, Engine,
    ExecOptions, JoinError,
};
use fdjoin::instances::random_instance;
use fdjoin::query::{examples, Query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_all(q: &Query, db: &fdjoin::storage::Database) {
    let expect = naive_join(q, db).unwrap().output;

    let gj = generic_join(q, db).unwrap();
    assert_eq!(
        gj.output,
        expect,
        "generic join mismatch on {}",
        q.display_body()
    );

    let fd_bind = ExecOptions::new()
        .algorithm(Algorithm::GenericJoin)
        .bind_fds(true);
    let gj_fd = Engine::new().execute(q, db, &fd_bind).unwrap();
    assert_eq!(
        gj_fd.output,
        expect,
        "FD-binding GJ mismatch on {}",
        q.display_body()
    );

    let bj = binary_join(q, db).unwrap();
    assert_eq!(
        bj.output,
        expect,
        "binary join mismatch on {}",
        q.display_body()
    );

    match chain_join(q, db) {
        Ok(ca) => {
            assert_eq!(
                ca.output,
                expect,
                "chain algorithm mismatch on {}",
                q.display_body()
            )
        }
        Err(JoinError::NoGoodChain) => {}
        Err(e) => panic!("unexpected chain error on {}: {e}", q.display_body()),
    }

    match sma_join(q, db) {
        Ok(sma) => assert_eq!(sma.output, expect, "SMA mismatch on {}", q.display_body()),
        Err(JoinError::NoGoodProof) => {} // Example 5.31 queries; CSMA covers them.
        Err(e) => panic!("unexpected SMA error on {}: {e}", q.display_body()),
    }

    let csma = csma_join(q, db).expect("CSMA sequence");
    assert_eq!(csma.output, expect, "CSMA mismatch on {}", q.display_body());

    // The auto-planner must agree too, whatever it picked.
    let auto = Engine::new().execute(q, db, &ExecOptions::new()).unwrap();
    assert_eq!(
        auto.output,
        expect,
        "auto ({}) mismatch on {}",
        auto.algorithm_used,
        q.display_body()
    );
    assert_ne!(
        auto.algorithm_used,
        Algorithm::Auto,
        "auto must record its decision"
    );
}

fn queries() -> Vec<Query> {
    vec![
        examples::triangle(),
        examples::fig1_udf(),
        examples::four_cycle_key(),
        examples::composite_key(),
        examples::fig5_udf_product(),
        examples::m3_query(),
        examples::simple_fd_path(),
        examples::fig4_query(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_algorithms_agree_on_random_instances(
        seed in any::<u64>(),
        rows in 5usize..40,
        keep in 40u32..100,
    ) {
        for q in queries() {
            let mut rng = StdRng::seed_from_u64(seed);
            let db = random_instance(&q, &mut rng, rows, keep);
            check_all(&q, &db);
        }
    }

    #[test]
    fn fig9_csma_agrees_on_random_instances(
        seed in any::<u64>(),
        rows in 3usize..16,
    ) {
        // Fig 9 is the query with no good SM proof: CSMA is the only paper
        // algorithm that meets its bound; check it against naive.
        let q = examples::fig9_query();
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_instance(&q, &mut rng, rows, 85);
        let expect = naive_join(&q, &db).unwrap().output;
        let csma = csma_join(&q, &db).expect("sequence exists");
        prop_assert_eq!(csma.output, expect);
    }
}

#[test]
fn all_algorithms_agree_on_worst_case_instances() {
    use fdjoin::bigint::rat;
    // Tight instances stress different code paths than random ones.
    let cases: Vec<(Query, fdjoin::storage::Database)> = vec![
        (
            examples::triangle(),
            fdjoin::instances::normal_worst_case(
                &examples::triangle(),
                &vec![rat(4, 1); 3],
                &rat(6, 1),
            )
            .unwrap(),
        ),
        (
            examples::fig4_query(),
            fdjoin::instances::normal_worst_case(
                &examples::fig4_query(),
                &vec![rat(3, 1); 4],
                &rat(4, 1),
            )
            .unwrap(),
        ),
        (examples::fig1_udf(), fdjoin::instances::fig1_tight(3)),
        (
            examples::fig1_udf(),
            fdjoin::instances::fig1_adversarial(16),
        ),
        (examples::m3_query(), fdjoin::instances::m3_parity(5)),
    ];
    for (q, db) in &cases {
        check_all(q, db);
    }
}

#[test]
fn fig9_worst_case_all_consistent() {
    use fdjoin::bigint::rat;
    let q = examples::fig9_query();
    let db = fdjoin::instances::normal_worst_case(&q, &vec![rat(2, 1); 3], &rat(3, 1)).unwrap();
    let expect = naive_join(&q, &db).unwrap().output;
    assert_eq!(expect.len(), 8); // 2^{3/2 · 2}
    let csma = csma_join(&q, &db).unwrap();
    assert_eq!(csma.output, expect);
    // SMA must *refuse* (no good proof sequence) — Example 5.31.
    assert_eq!(sma_join(&q, &db).unwrap_err(), JoinError::NoGoodProof);
}
