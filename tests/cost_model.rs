//! The data-dependent cost model end to end: measured degree/skew
//! statistics flip `Algorithm::Auto` decisions between databases with
//! *identical size profiles*, the decision record carries both the
//! worst-case bounds and the measured estimates, and `fdjoin_delta` uses
//! the same model to run delta-specialized plans whose saved work is
//! visible in `DeltaStats`.

use fdjoin::core::{naive_join, Algorithm, AutoReason, Engine, ExecOptions};
use fdjoin::delta::{ApplyDelta, DeltaBatch, DeltaOptions};
use fdjoin::instances::random_instance;
use fdjoin::query::examples;
use fdjoin::storage::{Database, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Spread subset: every (len/k)-th row of the sorted relation — close to
/// the relation's own value distribution, low skew.
fn spread_subset(rel: &Relation, k: usize) -> Relation {
    let n = rel.len();
    assert!(n >= k, "pool too small: {n} < {k}");
    rel.select_rows((0..k).map(|i| i * n / k))
}

/// Concentrated subset: the first k sorted rows — shared prefixes pile up
/// on few values, high skew.
fn head_subset(rel: &Relation, k: usize) -> Relation {
    rel.select_rows(0..k)
}

/// Two databases for `q` with identical size profiles (`k` rows per atom)
/// but different degree skew, both FD-consistent: row subsets of one
/// quasi-product pool instance (subsets of FD-satisfying relations satisfy
/// the FDs, and the pool's UDF registry rides along on the clone).
fn same_profile_different_skew(
    q: &fdjoin::query::Query,
    seed: u64,
    k: usize,
) -> (Database, Database) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = random_instance(q, &mut rng, 4000, 100);
    let mut uniform = pool.clone();
    let mut skewed = pool.clone();
    for a in q.atoms() {
        let rel = pool.relation(&a.name).unwrap();
        uniform.insert(a.name.clone(), spread_subset(rel, k));
        skewed.insert(a.name.clone(), head_subset(rel, k));
    }
    (uniform, skewed)
}

// ---------------------------------------------------------------------------
// The headline flip: same size profile, different skew ⇒ different choice.
// ---------------------------------------------------------------------------

#[test]
fn same_size_profile_different_skew_flips_the_auto_choice() {
    // Fig. 4 is the paper's chain-not-tight query: chain bound 3/2·n,
    // LLP optimum 4/3·n — the worst-case rules cannot close the gap, so
    // the measured statistics get to decide.
    let q = examples::fig4_query();
    let (uniform, skewed) = same_profile_different_skew(&q, 1, 64);

    let engine = Engine::new();
    let prepared = engine.prepare(&q);
    assert_eq!(
        prepared.size_profile(&uniform).unwrap(),
        prepared.size_profile(&skewed).unwrap(),
        "the two databases present the identical size profile"
    );

    let ru = prepared.execute(&uniform, &ExecOptions::new()).unwrap();
    let rs = prepared.execute(&skewed, &ExecOptions::new()).unwrap();
    let du = ru.auto.expect("auto decision recorded");
    let ds = rs.auto.expect("auto decision recorded");

    // Identical worst-case analysis…
    assert_eq!(du.chain_log_bound, ds.chain_log_bound);
    assert_eq!(du.llp_log_bound, ds.llp_log_bound);
    assert!(du.chain_log_bound.clone().unwrap() > du.llp_log_bound.clone().unwrap());

    // …but the measured data flips the algorithm.
    assert_eq!(du.algorithm, Algorithm::Chain);
    assert_eq!(du.reason, AutoReason::EstimatedTightChain);
    assert_eq!(ds.algorithm, Algorithm::Sma);
    assert_eq!(ds.reason, AutoReason::GoodSmProof);
    assert_ne!(
        du.algorithm, ds.algorithm,
        "skew-dependent tie flips the choice"
    );

    // Both decisions record the estimates they weighed, and the estimates
    // order exactly as the rule demands: the uniform database's pessimistic
    // estimate fits within the LLP optimum, the skewed one's does not.
    let llp = du.llp_log_bound.as_ref().unwrap();
    assert!(du.estimate_log_max.as_ref().unwrap() <= llp);
    assert!(ds.estimate_log_max.as_ref().unwrap() > llp);
    // Skew is the discriminator: zero gap on the spread subset, positive on
    // the concentrated one.
    assert_eq!(du.estimate_log_avg, du.estimate_log_max);
    assert!(ds.estimate_log_max.as_ref().unwrap() > ds.estimate_log_avg.as_ref().unwrap());

    // Either way the answers are correct.
    assert_eq!(ru.output, naive_join(&q, &uniform).unwrap().output);
    assert_eq!(rs.output, naive_join(&q, &skewed).unwrap().output);
}

#[test]
fn disabling_the_tiebreak_restores_worst_case_selection() {
    let q = examples::fig4_query();
    let (uniform, _) = same_profile_different_skew(&q, 7, 32);
    let r = Engine::new()
        .execute(&q, &uniform, &ExecOptions::new().cost_tiebreak(false))
        .unwrap();
    let d = r.auto.unwrap();
    // Without the data-dependent rule, the same database goes to SMA on
    // worst-case grounds and no estimates are consulted.
    assert_eq!(d.algorithm, Algorithm::Sma);
    assert_eq!(d.reason, AutoReason::GoodSmProof);
    assert_eq!(d.estimate_log_avg, None);
    assert_eq!(d.estimate_log_max, None);
}

// ---------------------------------------------------------------------------
// The estimate surface: PreparedQuery::estimate and cost::estimate_join.
// ---------------------------------------------------------------------------

#[test]
fn prepared_query_surfaces_estimates() {
    use fdjoin::bigint::Rational;
    let q = examples::fig4_query();
    let (uniform, skewed) = same_profile_different_skew(&q, 42, 32);
    let prepared = Engine::new().prepare(&q);
    let eu = prepared.estimate(&uniform).unwrap();
    let es = prepared.estimate(&skewed).unwrap();
    assert_eq!(eu, fdjoin::core::cost::estimate_join(&q, &uniform).unwrap());
    assert_eq!(eu.skew_gap(), Rational::zero());
    assert!(es.skew_gap() > Rational::zero());
    assert!(es.log_max > eu.log_max);
    assert!(!eu.factors.is_empty());
}

// ---------------------------------------------------------------------------
// Delta-profile-specialized plan selection.
// ---------------------------------------------------------------------------

/// The acceptance claim: with specialization on, a 1-tuple delta runs a
/// Δ-first plan and no longer pays for the view's full plan — strictly
/// less `DeltaStats::join_work` than the identical view with
/// specialization off, on deterministic counters.
#[test]
fn one_tuple_delta_stops_paying_for_the_full_plan() {
    for q in [examples::triangle(), examples::fig4_query()] {
        let mut rng = StdRng::seed_from_u64(4242);
        let db = random_instance(&q, &mut rng, 400, 90);
        let atom0 = q.atoms()[0].name.clone();
        let row: Vec<u64> = vec![987_654_321; q.atoms()[0].vars.len()];
        let prepared = Arc::new(Engine::new().prepare(&q));

        let run = |on: bool| {
            let mut view = prepared
                .materialize(db.clone(), DeltaOptions::new().specialize_deltas(on))
                .unwrap();
            let bs = view
                .apply_delta(&DeltaBatch::new().insert(&atom0, row.clone()))
                .unwrap();
            assert_eq!(bs.full_recomputes, 0);
            assert_eq!(bs.delta_joins, 1);
            (bs, view)
        };
        let (spec, spec_view) = run(true);
        let (plain, plain_view) = run(false);

        // Identical answers, both equal to a fresh join.
        assert_eq!(spec_view.output(), plain_view.output());
        let fresh = naive_join(&q, spec_view.database()).unwrap().output;
        assert_eq!(spec_view.output(), &fresh, "on {}", q.display_body());

        // The specialized view ran a Δ-first binary plan and its recorded
        // join work is strictly below replaying the view's full plan.
        assert_eq!(spec.specialized_deltas, 1, "on {}", q.display_body());
        assert_eq!(spec_view.delta_algorithms(), &[Algorithm::BinaryJoin]);
        // A plan-less binary join neither solves nor *reuses* plans.
        assert_eq!(spec.planning_solves, 0);
        assert_eq!(spec.plans_reused, 0);
        assert_eq!(plain.specialized_deltas, 0);
        assert_ne!(plain_view.delta_algorithms(), &[Algorithm::BinaryJoin]);
        assert!(
            spec.join_work < plain.join_work,
            "specialized delta work ({}) must be strictly below the view plan's ({}) on {}",
            spec.join_work,
            plain.join_work,
            q.display_body()
        );
    }
}

/// `cost_tiebreak(false)` promises size-profile-deterministic selection;
/// that covers the view's delta joins too, even though specialization has
/// its own switch.
#[test]
fn profile_deterministic_options_disable_delta_specialization() {
    let q = examples::triangle();
    let mut rng = StdRng::seed_from_u64(7);
    let db = random_instance(&q, &mut rng, 200, 90);
    let prepared = Arc::new(Engine::new().prepare(&q));
    let opts = DeltaOptions::new().exec(ExecOptions::new().cost_tiebreak(false));
    let mut view = prepared.materialize(db, opts).unwrap();
    let bs = view
        .apply_delta(&DeltaBatch::new().insert("R", [11, 12]))
        .unwrap();
    assert_eq!(bs.delta_joins, 1);
    assert_eq!(bs.specialized_deltas, 0);
    assert_ne!(view.delta_algorithms(), &[Algorithm::BinaryJoin]);
}

#[test]
fn pinned_algorithms_never_specialize() {
    let q = examples::triangle();
    let mut rng = StdRng::seed_from_u64(7);
    let db = random_instance(&q, &mut rng, 200, 90);
    let prepared = Arc::new(Engine::new().prepare(&q));
    let opts = DeltaOptions::new().exec(ExecOptions::new().algorithm(Algorithm::Chain));
    let mut view = prepared.materialize(db, opts).unwrap();
    let bs = view
        .apply_delta(&DeltaBatch::new().insert("R", [11, 12]))
        .unwrap();
    assert_eq!(bs.delta_joins, 1);
    assert_eq!(bs.specialized_deltas, 0, "explicit algorithm is honored");
    assert_eq!(view.delta_algorithms(), &[Algorithm::Chain]);
}

/// Large deltas price like full joins: the cost model declines to
/// specialize and the view's own plan runs.
#[test]
fn bulk_deltas_keep_the_view_plan() {
    let q = examples::triangle();
    let mut rng = StdRng::seed_from_u64(9);
    let db = random_instance(&q, &mut rng, 60, 90);
    let mut rng2 = StdRng::seed_from_u64(9 ^ 0xD1F7);
    let pool = random_instance(&q, &mut rng2, 60, 90);
    let prepared = Arc::new(Engine::new().prepare(&q));
    let mut view = prepared
        .materialize(db, DeltaOptions::new().max_delta_fraction(1.0))
        .unwrap();
    // Insert an entire second instance's R: the delta is as large as the
    // base relation, so the Δ-first estimate cannot beat a base scan.
    let mut delta = DeltaBatch::new();
    for row in pool.relation("R").unwrap().rows() {
        delta.push_insert("R", row.to_vec());
    }
    let bs = view.apply_delta(&delta).unwrap();
    if bs.delta_joins > 0 {
        assert_eq!(
            bs.specialized_deltas, 0,
            "a base-relation-sized delta must not look like a cheap delta"
        );
    }
    let fresh = naive_join(&q, view.database()).unwrap().output;
    assert_eq!(view.output(), &fresh);
}

/// Differential guard: specialized and unspecialized views agree with a
/// fresh naive join across a random insert/delete stream (the cost model
/// changes plans, never answers).
#[test]
fn specialized_views_track_naive_under_random_streams() {
    let q = examples::triangle();
    let mut rng = StdRng::seed_from_u64(31337);
    let db = random_instance(&q, &mut rng, 24, 85);
    let mut rng2 = StdRng::seed_from_u64(31337 ^ 0xD1F7);
    let pool = random_instance(&q, &mut rng2, 24, 85);
    let prepared = Arc::new(Engine::new().prepare(&q));
    let mut spec = prepared
        .materialize(db.clone(), DeltaOptions::new().max_delta_fraction(1.0))
        .unwrap();
    let mut plain = prepared
        .materialize(
            db,
            DeltaOptions::new()
                .max_delta_fraction(1.0)
                .specialize_deltas(false),
        )
        .unwrap();
    for step in 0..8 {
        let mut delta = DeltaBatch::new();
        for atom in q.atoms() {
            let pool_rel = pool.relation(&atom.name).unwrap();
            for _ in 0..rng.gen_range(0..3) {
                let i = rng.gen_range(0..pool_rel.len());
                delta.push_insert(&atom.name, pool_rel.row(i).to_vec());
            }
            let cur = spec.database().relation(&atom.name).unwrap();
            if !cur.is_empty() {
                let i = rng.gen_range(0..cur.len());
                delta.push_delete(&atom.name, cur.row(i).to_vec());
            }
        }
        spec.apply_delta(&delta).unwrap();
        plain.apply_delta(&delta).unwrap();
        let fresh = naive_join(&q, spec.database()).unwrap().output;
        assert_eq!(spec.output(), &fresh, "specialized view diverged at {step}");
        assert_eq!(plain.output(), &fresh, "plain view diverged at {step}");
    }
    assert!(
        spec.stats().specialized_deltas > 0,
        "the stream exercised specialized delta joins"
    );
}
