//! Differential testing of incremental maintenance: random insert/delete
//! sequences applied through `fdjoin::delta` must leave every
//! `MaterializedView` identical to a from-scratch join — for all six join
//! algorithms. Outputs are sorted + deduplicated relations, so `Relation`
//! equality *is* the sorted-multiset comparison.
//!
//! Inserts are drawn from a second random instance of the same query: the
//! canonical quasi-product coordinate scheme is deterministic per query,
//! so the union of two instances still satisfies every FD — deltas never
//! corrupt the database's integrity.

use fdjoin::core::{naive_join, Algorithm, Engine, ExecOptions, JoinError};
use fdjoin::delta::{ApplyDelta, DeltaBatch, DeltaOptions, MaterializedView};
use fdjoin::instances::random_instance;
use fdjoin::query::{examples, Query};
use fdjoin::storage::Database;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const ALGORITHMS: [Algorithm; 6] = [
    Algorithm::Chain,
    Algorithm::Sma,
    Algorithm::Csma,
    Algorithm::GenericJoin,
    Algorithm::BinaryJoin,
    Algorithm::Naive,
];

fn queries() -> Vec<Query> {
    vec![
        examples::triangle(),
        examples::fig1_udf(),
        examples::four_cycle_key(),
        examples::composite_key(),
        examples::simple_fd_path(),
        examples::fig4_query(),
    ]
}

/// One random batch: up to 2 inserts per atom from the FD-consistent pool
/// and up to 2 deletes per atom from the current relation.
fn random_delta(rng: &mut StdRng, q: &Query, current: &Database, pool: &Database) -> DeltaBatch {
    let mut delta = DeltaBatch::new();
    for atom in q.atoms() {
        let pool_rel = pool.relation(&atom.name).unwrap();
        if !pool_rel.is_empty() {
            for _ in 0..rng.gen_range(0..3) {
                let i = rng.gen_range(0..pool_rel.len());
                delta.push_insert(&atom.name, pool_rel.row(i).to_vec());
            }
        }
        let cur = current.relation(&atom.name).unwrap();
        if !cur.is_empty() {
            for _ in 0..rng.gen_range(0..3) {
                let i = rng.gen_range(0..cur.len());
                delta.push_delete(&atom.name, cur.row(i).to_vec());
            }
        }
    }
    delta
}

/// Drive one (query, algorithm) view through a random delta sequence,
/// checking it against a fresh naive join after every batch. Returns how
/// many batches were verified.
fn run_sequence(q: &Query, alg: Algorithm, seed: u64, rows: usize, batches: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_instance(q, &mut rng, rows, 80);
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xD1F7);
    let pool = random_instance(q, &mut rng2, rows, 80);

    let opts = DeltaOptions::new()
        .exec(ExecOptions::new().algorithm(alg))
        // Small databases: let every batch take the incremental path so
        // the delta-join machinery (not the fallback) is what's tested.
        .max_delta_fraction(1.0);
    let prepared = Arc::new(Engine::new().prepare(q));
    let mut view: MaterializedView = match prepared.materialize(db, opts) {
        Ok(v) => v,
        // Chain/SMA legitimately refuse some lattices (Example 5.31 etc.).
        Err(JoinError::NoGoodChain | JoinError::NoGoodProof) => return 0,
        Err(e) => panic!("{alg} on {}: {e}", q.display_body()),
    };

    let mut verified = 0;
    for step in 0..batches {
        let delta = random_delta(&mut rng, q, view.database(), &pool);
        match view.apply_delta(&delta) {
            Ok(_) => {}
            // A delta size profile may lose chain/proof goodness even when
            // the original profile had it; the view is then stale by
            // contract, so stop this sequence.
            Err(JoinError::NoGoodChain | JoinError::NoGoodProof) => return verified,
            Err(e) => panic!("{alg} on {} step {step}: {e}", q.display_body()),
        }
        let fresh = naive_join(q, view.database()).unwrap().output;
        assert_eq!(
            view.output(),
            &fresh,
            "{alg} on {} diverged at step {step} (seed {seed})",
            q.display_body()
        );
        verified += 1;
    }
    verified
}

proptest! {
    // 6 cases × 6 queries × 6 algorithms = 216 random delta sequences
    // (≥ 100 even if Chain/SMA refuse some queries), 4 batches each.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn apply_delta_matches_fresh_join_for_all_algorithms(
        seed in any::<u64>(),
        rows in 6usize..16,
    ) {
        let mut batches_verified = 0usize;
        let mut sequences_verified = 0usize;
        for q in queries() {
            for alg in ALGORITHMS {
                let verified = run_sequence(&q, alg, seed, rows, 4);
                batches_verified += verified;
                sequences_verified += (verified > 0) as usize;
            }
        }
        // Guard against the harness going vacuously green: Chain/SMA may
        // refuse some lattices, but CSMA, Generic-Join, binary join, and
        // naive never do — 4 algorithms × 6 queries × 4 batches is the
        // guaranteed floor per case.
        prop_assert!(
            sequences_verified >= 24 && batches_verified >= 96,
            "only {sequences_verified} sequences / {batches_verified} batches verified"
        );
    }

    #[test]
    fn auto_planned_views_survive_longer_sequences(
        seed in any::<u64>(),
        rows in 8usize..20,
    ) {
        // Auto re-decides per delta profile; a longer stream stresses the
        // decision flipping between chain/SMA/CSMA mid-maintenance.
        for q in [examples::triangle(), examples::fig1_udf(), examples::fig4_query()] {
            let mut rng = StdRng::seed_from_u64(seed);
            let db = random_instance(&q, &mut rng, rows, 80);
            let mut rng2 = StdRng::seed_from_u64(seed ^ 0xABCD);
            let pool = random_instance(&q, &mut rng2, rows, 80);
            let prepared = Arc::new(Engine::new().prepare(&q));
            let mut view = prepared
                .materialize(db, DeltaOptions::new().max_delta_fraction(1.0))
                .unwrap();
            for step in 0..6 {
                let delta = random_delta(&mut rng, &q, view.database(), &pool);
                view.apply_delta(&delta).unwrap();
                let fresh = naive_join(&q, view.database()).unwrap().output;
                prop_assert_eq!(
                    view.output(),
                    &fresh,
                    "auto on {} step {}", q.display_body(), step
                );
            }
            // The stream never re-prepared: one lattice presentation ever.
            prop_assert_eq!(prepared.prep_stats().lattice_presentations, 1);
        }
    }
}

/// The headline acceptance claim: maintaining a view under a 1-tuple delta
/// performs strictly less join work than recomputing from scratch —
/// asserted on deterministic `DeltaStats`/`Stats` counters, not wall-clock.
#[test]
fn single_tuple_delta_beats_full_recompute() {
    let q = examples::triangle();
    let mut rng = StdRng::seed_from_u64(4242);
    let db = random_instance(&q, &mut rng, 400, 90);
    let prepared = Arc::new(Engine::new().prepare(&q));
    let mut view = prepared.materialize(db, DeltaOptions::new()).unwrap();

    let delta = DeltaBatch::new().insert("R", [123_456, 654_321]);
    let bs = view.apply_delta(&delta).unwrap();
    assert_eq!(bs.full_recomputes, 0, "1 tuple must not trip the threshold");
    assert_eq!(bs.delta_joins, 1);

    // Recompute the same (post-delta) database from scratch.
    let full = Engine::new()
        .execute(&q, view.database(), &ExecOptions::new())
        .unwrap();
    assert_eq!(
        view.output(),
        &full.output,
        "incremental and recomputed answers agree"
    );
    assert!(
        bs.join_work < full.stats.work(),
        "incremental join work ({}) must be strictly below a full recompute ({})",
        bs.join_work,
        full.stats.work()
    );
}

/// Deletions alone revalidate the materialization without any delta join,
/// and still beat a recompute on work.
#[test]
fn single_tuple_delete_beats_full_recompute() {
    let q = examples::triangle();
    let mut rng = StdRng::seed_from_u64(77);
    let db = random_instance(&q, &mut rng, 400, 90);
    let victim = db.relation("R").unwrap().row(0).to_vec();
    let prepared = Arc::new(Engine::new().prepare(&q));
    let mut view = prepared.materialize(db, DeltaOptions::new()).unwrap();

    let bs = view
        .apply_delta(&DeltaBatch::new().delete("R", victim))
        .unwrap();
    assert_eq!(bs.delta_joins, 0);
    assert_eq!(bs.full_recomputes, 0);
    let full = Engine::new()
        .execute(&q, view.database(), &ExecOptions::new())
        .unwrap();
    assert_eq!(view.output(), &full.output);
    assert!(bs.join_work < full.stats.work());
}
