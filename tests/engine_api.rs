//! The unified `Engine` API: auto-planning, option routing, prepared-query
//! plan reuse, and the shared `JoinResult`/`JoinError` contract.

use fdjoin::core::{
    binary_join, chain_join, chain_join_no_argmin, csma_join, generic_join, naive_join, sma_join,
    Algorithm, AutoReason, Engine, ExecOptions, JoinError, JoinResult, UserDegreeBound,
};
use fdjoin::query::{examples, Query};
use fdjoin::storage::{Database, Relation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn triangle_db() -> Database {
    let mut db = Database::new();
    db.insert(
        "R",
        Relation::from_rows(vec![0, 1], [[1, 2], [1, 3], [2, 3], [7, 8]]),
    );
    db.insert(
        "S",
        Relation::from_rows(vec![1, 2], [[2, 3], [3, 1], [8, 9]]),
    );
    db.insert(
        "T",
        Relation::from_rows(vec![2, 0], [[3, 1], [1, 1], [9, 7]]),
    );
    db
}

fn fig1_db() -> Database {
    let mut db = Database::new();
    db.insert(
        "R",
        Relation::from_rows(vec![0, 1], [[1, 1], [2, 1], [1, 2]]),
    );
    db.insert(
        "S",
        Relation::from_rows(vec![1, 2], [[1, 1], [2, 1], [1, 2]]),
    );
    db.insert(
        "T",
        Relation::from_rows(vec![2, 3], [[1, 1], [1, 2], [2, 1]]),
    );
    db.udfs
        .register(fdjoin::lattice::VarSet::from_vars([0, 2]), 3, |v| v[0]);
    db.udfs
        .register(fdjoin::lattice::VarSet::from_vars([1, 3]), 0, |v| v[1]);
    db
}

// ---------------------------------------------------------------------------
// Auto selection is bound-driven.
// ---------------------------------------------------------------------------

#[test]
fn auto_picks_chain_on_triangle() {
    // No FDs ⇒ Boolean (distributive) lattice ⇒ the chain bound is tight.
    let q = examples::triangle();
    let db = triangle_db();
    let r = Engine::new().execute(&q, &db, &ExecOptions::new()).unwrap();
    assert_eq!(r.algorithm_used, Algorithm::Chain);
    assert!(r.chain().is_some(), "chain plan must be recorded");
    assert_eq!(r.output, naive_join(&q, &db).unwrap().output);
}

#[test]
fn auto_picks_chain_on_fd_examples() {
    // simple_fd_path: simple FDs ⇒ distributive (Prop. 3.2).
    // fig1_udf: non-distributive, but the best chain matches the LLP value
    // (the Fig. 6 tightness situation) — the planner detects it.
    for (q, db) in [
        (examples::simple_fd_path(), {
            let mut db = Database::new();
            db.insert(
                "R",
                Relation::from_rows(vec![0, 1], [[1, 1], [2, 1], [3, 2]]),
            );
            db.insert("S", Relation::from_rows(vec![1, 2], [[1, 5], [2, 6]]));
            db.insert(
                "T",
                Relation::from_rows(vec![2, 3], [[5, 9], [6, 8], [7, 7]]),
            );
            db
        }),
        (examples::fig1_udf(), fig1_db()),
    ] {
        let r = Engine::new().execute(&q, &db, &ExecOptions::new()).unwrap();
        assert_eq!(
            r.algorithm_used,
            Algorithm::Chain,
            "auto must pick chain on {}",
            q.display_body()
        );
        assert_eq!(r.output, naive_join(&q, &db).unwrap().output);
    }
}

#[test]
fn auto_falls_back_to_sma_then_csma() {
    // Fig 4: chain bound 3/2·n strictly above the LLP 4/3·n, but a good
    // SM-proof exists ⇒ SMA. The data-dependent tie-break is disabled so
    // the selection is a pure function of the worst-case bounds (with it
    // on, a low-skew instance may legitimately run the chain instead —
    // see tests/cost_model.rs).
    let q4 = examples::fig4_query();
    let mut rng = StdRng::seed_from_u64(11);
    let db4 = fdjoin::instances::random_instance(&q4, &mut rng, 10, 85);
    let r4 = Engine::new()
        .execute(&q4, &db4, &ExecOptions::new().cost_tiebreak(false))
        .unwrap();
    assert_eq!(r4.algorithm_used, Algorithm::Sma);
    assert!(r4.sm_proof().is_some());
    assert_eq!(r4.output, naive_join(&q4, &db4).unwrap().output);

    // Fig 9: no good SM proof exists (Example 5.31) ⇒ CSMA.
    let q9 = examples::fig9_query();
    let mut rng = StdRng::seed_from_u64(11);
    let db9 = fdjoin::instances::random_instance(&q9, &mut rng, 8, 85);
    let r9 = Engine::new()
        .execute(&q9, &db9, &ExecOptions::new().cost_tiebreak(false))
        .unwrap();
    assert_eq!(r9.algorithm_used, Algorithm::Csma);
    assert!(r9.csm_sequence().is_some());
    assert_eq!(r9.output, naive_join(&q9, &db9).unwrap().output);
}

// ---------------------------------------------------------------------------
// Auto records a structured decision (what, why, and the compared bounds).
// ---------------------------------------------------------------------------

#[test]
fn auto_decision_records_reason_and_bounds() {
    let engine = Engine::new();

    // Distributive lattice: chain picked before any LLP solve.
    let q = examples::triangle();
    let db = triangle_db();
    let r = engine.execute(&q, &db, &ExecOptions::new()).unwrap();
    let d = r.auto.expect("Auto records a decision");
    assert_eq!(d.algorithm, Algorithm::Chain);
    assert_eq!(d.reason, AutoReason::DistributiveTightChain);
    assert_eq!(d.chain_log_bound, r.predicted_log_bound);
    assert_eq!(d.llp_log_bound, None);

    // Fig 1: non-distributive, chain bound == LLP optimum.
    let q1 = examples::fig1_udf();
    let db1 = fig1_db();
    let r1 = engine.execute(&q1, &db1, &ExecOptions::new()).unwrap();
    let d1 = r1.auto.unwrap();
    assert_eq!(d1.reason, AutoReason::ChainMatchesLlpOptimum);
    assert_eq!(d1.chain_log_bound, d1.llp_log_bound.clone());

    // Fig 4: chain bound strictly above the LLP optimum, good proof ⇒ SMA
    // (tie-break disabled: the decision documents the worst-case rules;
    // with it enabled, the measured estimates join the record — see
    // tests/cost_model.rs).
    let q4 = examples::fig4_query();
    let mut rng = StdRng::seed_from_u64(11);
    let db4 = fdjoin::instances::random_instance(&q4, &mut rng, 10, 85);
    let r4 = engine
        .execute(&q4, &db4, &ExecOptions::new().cost_tiebreak(false))
        .unwrap();
    let d4 = r4.auto.unwrap();
    assert_eq!(d4.algorithm, Algorithm::Sma);
    assert_eq!(d4.reason, AutoReason::GoodSmProof);
    assert_eq!(
        (&d4.estimate_log_avg, &d4.estimate_log_max),
        (&None, &None),
        "tie-break disabled: no estimates were consulted or recorded"
    );
    let (cb, llp) = (d4.chain_log_bound.unwrap(), d4.llp_log_bound.unwrap());
    assert!(cb > llp, "SMA chosen because the chain bound is not tight");
    assert_eq!(Some(llp), r4.predicted_log_bound);

    // Fig 9: no good proof ⇒ CSMA fallback, both bounds recorded.
    let q9 = examples::fig9_query();
    let mut rng = StdRng::seed_from_u64(11);
    let db9 = fdjoin::instances::random_instance(&q9, &mut rng, 8, 85);
    let r9 = engine
        .execute(&q9, &db9, &ExecOptions::new().cost_tiebreak(false))
        .unwrap();
    let d9 = r9.auto.unwrap();
    assert_eq!(d9.algorithm, Algorithm::Csma);
    assert_eq!(d9.reason, AutoReason::CsmaFallback);
    assert!(d9.llp_log_bound.is_some());
}

/// Coverage: every `AutoReason` variant fires at least once, and the
/// bounds the planner records are exactly the ones the `bounds` crate
/// computes from the same lattice presentation and log sizes — the
/// decision record is auditable, not just a label.
#[test]
fn auto_decision_covers_every_rule_with_bounds_crate_values() {
    use fdjoin::bounds::chain::best_chain_bound;
    use fdjoin::bounds::llp::solve_llp;
    use fdjoin::core::atom_log_sizes;
    use std::collections::BTreeSet;

    let engine = Engine::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();

    // The four bound-driven rules, each on the query/database that the
    // paper associates with it.
    let mut rng = StdRng::seed_from_u64(11);
    let db4 = fdjoin::instances::random_instance(&examples::fig4_query(), &mut rng, 10, 85);
    let mut rng = StdRng::seed_from_u64(11);
    let db9 = fdjoin::instances::random_instance(&examples::fig9_query(), &mut rng, 8, 85);
    // The worst-case rules run with the data-dependent tie-break disabled
    // (their outcome must be a function of the bounds alone); the
    // EstimatedTightChain case re-runs Fig. 4 with it enabled — the same
    // database that SMA serves under worst-case rules is low-skew enough
    // that the measured estimate licenses the chain algorithm.
    let cases: [(
        Query,
        fdjoin::storage::Database,
        ExecOptions,
        AutoReason,
        Algorithm,
    ); 5] = [
        (
            examples::triangle(),
            triangle_db(),
            ExecOptions::new().cost_tiebreak(false),
            AutoReason::DistributiveTightChain,
            Algorithm::Chain,
        ),
        (
            examples::fig1_udf(),
            fig1_db(),
            ExecOptions::new().cost_tiebreak(false),
            AutoReason::ChainMatchesLlpOptimum,
            Algorithm::Chain,
        ),
        (
            examples::fig4_query(),
            db4.clone(),
            ExecOptions::new().cost_tiebreak(false),
            AutoReason::GoodSmProof,
            Algorithm::Sma,
        ),
        (
            examples::fig4_query(),
            db4,
            ExecOptions::new(),
            AutoReason::EstimatedTightChain,
            Algorithm::Chain,
        ),
        (
            examples::fig9_query(),
            db9,
            ExecOptions::new().cost_tiebreak(false),
            AutoReason::CsmaFallback,
            Algorithm::Csma,
        ),
    ];
    for (q, db, opts, reason, algorithm) in cases {
        let r = engine.execute(&q, &db, &opts).unwrap();
        let d = r.auto.expect("Auto records a decision");
        assert_eq!(d.reason, reason, "on {}", q.display_body());
        assert_eq!(d.algorithm, algorithm, "on {}", q.display_body());
        assert_eq!(d.algorithm, r.algorithm_used);
        seen.insert(d.reason.to_string());

        // Recompute the compared bounds directly from the bounds crate.
        let pres = q.lattice_presentation();
        let logs = atom_log_sizes(&q, &db).unwrap();
        let expect_chain =
            best_chain_bound(&pres.lattice, &pres.inputs, &logs).map(|cb| cb.log_bound);
        let expect_llp = solve_llp(&pres.lattice, &pres.inputs, &logs).value;
        if let Some(recorded) = &d.chain_log_bound {
            assert_eq!(
                Some(recorded),
                expect_chain.as_ref(),
                "{}: recorded chain bound must be the bounds crate's",
                q.display_body()
            );
        } else {
            assert!(
                expect_chain.is_none(),
                "{}: chain bound omitted only when no good chain exists",
                q.display_body()
            );
        }
        if let Some(recorded) = &d.llp_log_bound {
            assert_eq!(
                recorded,
                &expect_llp,
                "{}: recorded LLP optimum must be the bounds crate's",
                q.display_body()
            );
        } else {
            // Only the distributive shortcut skips the LLP solve.
            assert_eq!(d.reason, AutoReason::DistributiveTightChain);
        }
        if d.reason == AutoReason::EstimatedTightChain {
            // The tie-break fired: both measured estimates are on record,
            // and the pessimistic one sits within the LLP optimum — the
            // very condition that licensed the chain.
            let est_max = d.estimate_log_max.as_ref().expect("estimate recorded");
            assert!(d.estimate_log_avg.is_some());
            assert!(est_max <= d.llp_log_bound.as_ref().unwrap());
        }
    }

    // The two option-pinned rules.
    let q = examples::triangle();
    let db = triangle_db();
    let with_bound = ExecOptions::new().degree_bound(UserDegreeBound {
        atom: 0,
        on: vec![0],
        max_degree: 2,
    });
    let d = engine.execute(&q, &db, &with_bound).unwrap().auto.unwrap();
    assert_eq!(d.reason, AutoReason::DegreeBoundsPinCsma);
    assert_eq!((&d.chain_log_bound, &d.llp_log_bound), (&None, &None));
    seen.insert(d.reason.to_string());

    let pres = q.lattice_presentation();
    let chain = fdjoin::bounds::chain::cor59_chain(&pres.lattice, &pres.inputs);
    let d = engine
        .execute(&q, &db, &ExecOptions::new().chain(chain))
        .unwrap()
        .auto
        .unwrap();
    assert_eq!(d.reason, AutoReason::ChainOverridePinsChain);
    seen.insert(d.reason.to_string());

    let all: BTreeSet<String> = [
        AutoReason::DegreeBoundsPinCsma,
        AutoReason::ChainOverridePinsChain,
        AutoReason::DistributiveTightChain,
        AutoReason::ChainMatchesLlpOptimum,
        AutoReason::EstimatedTightChain,
        AutoReason::GoodSmProof,
        AutoReason::CsmaFallback,
    ]
    .iter()
    .map(|r| r.to_string())
    .collect();
    assert_eq!(seen, all, "every AutoReason variant exercised");
}

#[test]
fn auto_decision_reports_pinning_options() {
    let q = examples::triangle();
    let db = triangle_db();
    let engine = Engine::new();

    let with_bound = ExecOptions::new().degree_bound(UserDegreeBound {
        atom: 0,
        on: vec![0],
        max_degree: 2,
    });
    let d = engine.execute(&q, &db, &with_bound).unwrap().auto.unwrap();
    assert_eq!(d.algorithm, Algorithm::Csma);
    assert_eq!(d.reason, AutoReason::DegreeBoundsPinCsma);

    let pres = q.lattice_presentation();
    let chain = fdjoin::bounds::chain::cor59_chain(&pres.lattice, &pres.inputs);
    let with_chain = ExecOptions::new().chain(chain);
    let d = engine.execute(&q, &db, &with_chain).unwrap().auto.unwrap();
    assert_eq!(d.algorithm, Algorithm::Chain);
    assert_eq!(d.reason, AutoReason::ChainOverridePinsChain);
}

#[test]
fn explicit_algorithms_record_no_auto_decision() {
    let q = examples::triangle();
    let db = triangle_db();
    for alg in [Algorithm::Chain, Algorithm::GenericJoin, Algorithm::Naive] {
        let r = Engine::new()
            .execute(&q, &db, &ExecOptions::new().algorithm(alg))
            .unwrap();
        assert!(r.auto.is_none(), "{alg}: explicit choice is not Auto's");
    }
}

// ---------------------------------------------------------------------------
// Every explicit variant matches its free-function shim.
// ---------------------------------------------------------------------------

#[test]
fn explicit_variants_match_free_functions() {
    let q = examples::fig1_udf();
    let db = fig1_db();
    let engine = Engine::new();
    let cases: Vec<(Algorithm, JoinResult)> = vec![
        (Algorithm::Chain, chain_join(&q, &db).unwrap()),
        (
            Algorithm::ChainNoArgmin,
            chain_join_no_argmin(&q, &db).unwrap(),
        ),
        (Algorithm::Sma, sma_join(&q, &db).unwrap()),
        (Algorithm::Csma, csma_join(&q, &db).unwrap()),
        (Algorithm::GenericJoin, generic_join(&q, &db).unwrap()),
        (Algorithm::BinaryJoin, binary_join(&q, &db).unwrap()),
        (Algorithm::Naive, naive_join(&q, &db).unwrap()),
    ];
    for (alg, free) in cases {
        let via_engine = engine
            .execute(&q, &db, &ExecOptions::new().algorithm(alg))
            .unwrap();
        assert_eq!(via_engine.algorithm_used, alg);
        assert_eq!(free.algorithm_used, alg);
        assert_eq!(via_engine.output, free.output, "{alg} output mismatch");
        // The engine's index cache warms across the loop; compare the
        // cache-independent counters plus total acquisitions.
        assert_eq!(
            via_engine.stats.deterministic(),
            free.stats.deterministic(),
            "{alg} stats mismatch"
        );
        assert_eq!(via_engine.stats.index_gets(), free.stats.index_gets());
        assert_eq!(
            via_engine.predicted_log_bound, free.predicted_log_bound,
            "{alg} bound mismatch"
        );
    }
}

// ---------------------------------------------------------------------------
// PreparedQuery reuses plans and reproduces direct-call results exactly.
// ---------------------------------------------------------------------------

#[test]
fn prepared_query_skips_recomputation() {
    let q = examples::fig1_udf();
    let db = fig1_db();
    let prepared = Engine::new().prepare(&q);
    assert_eq!(prepared.prep_stats().lattice_presentations, 1);
    assert_eq!(
        prepared.prep_stats().total(),
        1,
        "prepare does no size-dependent work"
    );

    for alg in [
        Algorithm::Chain,
        Algorithm::Sma,
        Algorithm::Csma,
        Algorithm::Auto,
    ] {
        let opts = ExecOptions::new().algorithm(alg);
        let first = prepared.execute(&db, &opts).unwrap();
        let after_first = prepared.prep_stats();
        let second = prepared.execute(&db, &opts).unwrap();
        let after_second = prepared.prep_stats();

        // Re-execution reuses every cached plan and every cached trie
        // index: no solves, no index builds — only index hits may grow.
        let window = after_second.since(&after_first);
        assert_eq!(
            window.solves(),
            0,
            "{alg}: second execution must not re-plan (lattice/LLP/chain/proof)"
        );
        assert_eq!(
            window.index_builds, 0,
            "{alg}: second execution must not rebuild any trie index"
        );
        assert!(
            window.index_hits > 0,
            "{alg}: second execution must serve probes from cached indexes"
        );
        // And the results are deterministic (the index build/hit split
        // reflects cache warmth, so compare the cache-independent part
        // plus the total number of index acquisitions).
        assert_eq!(first.output, second.output);
        assert_eq!(
            first.stats.deterministic(),
            second.stats.deterministic(),
            "{alg}: identical work counters across reruns"
        );
        assert_eq!(first.stats.index_gets(), second.stats.index_gets());

        // The prepared path is execution-equivalent to two direct calls.
        let direct = Engine::new().execute(&q, &db, &opts).unwrap();
        assert_eq!(first.output, direct.output);
        assert_eq!(
            first.stats.deterministic(),
            direct.stats.deterministic(),
            "{alg}: prepared Stats == direct Stats"
        );
    }

    // Only one lattice presentation was ever computed.
    assert_eq!(prepared.prep_stats().lattice_presentations, 1);
}

#[test]
fn prepared_query_replans_for_new_size_profile() {
    let q = examples::triangle();
    let prepared = Engine::new().prepare(&q);
    let db1 = triangle_db();
    prepared.execute(&db1, &ExecOptions::new()).unwrap();
    let after_db1 = prepared.prep_stats();

    // A database with a different size profile needs (and gets) a new plan…
    let mut db2 = triangle_db();
    db2.insert("R", Relation::from_rows(vec![0, 1], [[1, 2]]));
    prepared.execute(&db2, &ExecOptions::new()).unwrap();
    let after_db2 = prepared.prep_stats();
    assert!(after_db2.chain_searches > after_db1.chain_searches);

    // …but re-running either database stays cached (no solves, no index
    // rebuilds — the databases' relation versions are unchanged).
    prepared.execute(&db1, &ExecOptions::new()).unwrap();
    prepared.execute(&db2, &ExecOptions::new()).unwrap();
    let window = prepared.prep_stats().since(&after_db2);
    assert_eq!(window.solves(), 0);
    assert_eq!(window.index_builds, 0);
}

// ---------------------------------------------------------------------------
// The shared error type.
// ---------------------------------------------------------------------------

#[test]
fn missing_relation_is_a_join_error_everywhere() {
    let q = examples::triangle();
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(vec![0, 1], [[1, 2]]));
    // S and T absent.
    for alg in [
        Algorithm::Auto,
        Algorithm::Chain,
        Algorithm::Sma,
        Algorithm::Csma,
        Algorithm::GenericJoin,
        Algorithm::BinaryJoin,
        Algorithm::Naive,
    ] {
        let err = Engine::new()
            .execute(&q, &db, &ExecOptions::new().algorithm(alg))
            .unwrap_err();
        assert!(
            matches!(err, JoinError::MissingRelation(ref name) if name == "S"),
            "{alg}: expected MissingRelation(S), got {err:?}"
        );
    }
}

#[test]
fn sma_refusal_is_typed() {
    // Fig 9 admits no good SM-proof sequence (Example 5.31).
    let q = examples::fig9_query();
    let mut rng = StdRng::seed_from_u64(3);
    let db = fdjoin::instances::random_instance(&q, &mut rng, 6, 90);
    assert_eq!(sma_join(&q, &db).unwrap_err(), JoinError::NoGoodProof);
}

#[test]
fn invalid_options_are_rejected() {
    let q = examples::triangle();
    let db = triangle_db();
    let engine = Engine::new();

    let bad_var = ExecOptions::new()
        .algorithm(Algorithm::GenericJoin)
        .var_order(vec![0, 0]);
    assert!(matches!(
        engine.execute(&q, &db, &bad_var).unwrap_err(),
        JoinError::InvalidOptions(_)
    ));

    // A partial order that omits an atom variable must be rejected, not
    // panic mid-expansion.
    let partial_var = ExecOptions::new()
        .algorithm(Algorithm::GenericJoin)
        .var_order(vec![0, 1]);
    assert!(matches!(
        engine.execute(&q, &db, &partial_var).unwrap_err(),
        JoinError::InvalidOptions(_)
    ));

    let bad_atom = ExecOptions::new()
        .algorithm(Algorithm::BinaryJoin)
        .atom_order(vec![0, 1]);
    assert!(matches!(
        engine.execute(&q, &db, &bad_atom).unwrap_err(),
        JoinError::InvalidOptions(_)
    ));

    let bad_bound = ExecOptions::new()
        .algorithm(Algorithm::Csma)
        .degree_bound(UserDegreeBound {
            atom: 9,
            on: vec![0],
            max_degree: 1,
        });
    assert!(matches!(
        engine.execute(&q, &db, &bad_bound).unwrap_err(),
        JoinError::InvalidOptions(_)
    ));

    // Out-of-range conditioning variable in a degree bound.
    let bad_on = ExecOptions::new()
        .algorithm(Algorithm::Csma)
        .degree_bound(UserDegreeBound {
            atom: 0,
            on: vec![77],
            max_degree: 1,
        });
    assert!(matches!(
        engine.execute(&q, &db, &bad_on).unwrap_err(),
        JoinError::InvalidOptions(_)
    ));
}

#[test]
fn auto_honors_algorithm_specific_options() {
    let q = examples::triangle();
    let db = triangle_db();
    let engine = Engine::new();

    // Degree bounds are a CSMA-only constraint: Auto must not drop them.
    let with_bound = ExecOptions::new().degree_bound(UserDegreeBound {
        atom: 0,
        on: vec![0],
        max_degree: 2,
    });
    let r = engine.execute(&q, &db, &with_bound).unwrap();
    assert_eq!(r.algorithm_used, Algorithm::Csma);

    // A chain override pins Auto to the chain algorithm, and the override's
    // bound is cached across re-executions.
    let pres = q.lattice_presentation();
    let chain = fdjoin::bounds::chain::cor59_chain(&pres.lattice, &pres.inputs);
    let with_chain = ExecOptions::new().chain(chain);
    let prepared = engine.prepare(&q);
    let r1 = prepared.execute(&db, &with_chain).unwrap();
    assert_eq!(r1.algorithm_used, Algorithm::Chain);
    let after_first = prepared.prep_stats();
    let r2 = prepared.execute(&db, &with_chain).unwrap();
    let window = prepared.prep_stats().since(&after_first);
    assert_eq!(window.solves(), 0, "override plan must be cached");
    assert_eq!(window.index_builds, 0, "override run reuses cached indexes");
    assert_eq!(r1.output, r2.output);
}

// ---------------------------------------------------------------------------
// Option routing through the one options struct.
// ---------------------------------------------------------------------------

#[test]
fn chain_override_is_respected() {
    use fdjoin::bounds::chain::Chain;
    // The Fig. 6 chain 0̂ ≺ y ≺ yz ≺ 1̂ on the Fig. 1 query.
    let q = examples::fig1_udf();
    let db = fig1_db();
    let pres = q.lattice_presentation();
    let lat = &pres.lattice;
    let vs = |v: &[u32]| fdjoin::lattice::VarSet::from_vars(v.iter().copied());
    let y = q.var_id("y").unwrap();
    let z = q.var_id("z").unwrap();
    let fig6 = Chain::new(
        lat,
        vec![
            lat.bottom(),
            lat.elem_of_set(vs(&[y])).unwrap(),
            lat.elem_of_set(vs(&[y, z])).unwrap(),
            lat.top(),
        ],
    );
    let opts = ExecOptions::new()
        .algorithm(Algorithm::Chain)
        .chain(fig6.clone());
    let r = Engine::new().execute(&q, &db, &opts).unwrap();
    assert_eq!(r.chain().unwrap().elems, fig6.elems);
    assert_eq!(r.output, naive_join(&q, &db).unwrap().output);
}

#[test]
fn degree_bounds_tighten_the_csma_budget() {
    let q = examples::triangle();
    let db = fdjoin::instances::bounded_degree_triangle(64, 2);
    let real_d = db.relation("R").unwrap().max_degree(1) as u64;
    let with_bound = ExecOptions::new()
        .algorithm(Algorithm::Csma)
        .degree_bound(UserDegreeBound {
            atom: 0,
            on: vec![0],
            max_degree: real_d,
        });
    let bounded = Engine::new().execute(&q, &db, &with_bound).unwrap();
    let plain = csma_join(&q, &db).unwrap();
    assert_eq!(bounded.output, plain.output);
    assert!(bounded.predicted_log_bound.unwrap() < plain.predicted_log_bound.unwrap());
}

// ---------------------------------------------------------------------------
// Equivalence sweep through the engine across all algorithms and queries.
// ---------------------------------------------------------------------------

#[test]
fn engine_matches_naive_across_algorithms_and_queries() {
    let queries: Vec<Query> = vec![
        examples::triangle(),
        examples::fig1_udf(),
        examples::four_cycle_key(),
        examples::composite_key(),
        examples::simple_fd_path(),
        examples::fig4_query(),
    ];
    let engine = Engine::new();
    for q in &queries {
        let mut rng = StdRng::seed_from_u64(42);
        let db = fdjoin::instances::random_instance(q, &mut rng, 14, 80);
        let expect = naive_join(q, &db).unwrap().output;
        let prepared = engine.prepare(q);
        for alg in [
            Algorithm::Auto,
            Algorithm::Chain,
            Algorithm::ChainNoArgmin,
            Algorithm::Sma,
            Algorithm::Csma,
            Algorithm::GenericJoin,
            Algorithm::BinaryJoin,
            Algorithm::Naive,
        ] {
            match prepared.execute(&db, &ExecOptions::new().algorithm(alg)) {
                Ok(r) => assert_eq!(r.output, expect, "{alg} mismatch on {}", q.display_body()),
                // Chain/SMA may legitimately refuse on some lattices.
                Err(JoinError::NoGoodChain) | Err(JoinError::NoGoodProof) => {}
                Err(e) => panic!("{alg} failed on {}: {e}", q.display_body()),
            }
        }
    }
}
