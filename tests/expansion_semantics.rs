//! The Expansion procedure (Sec. 2) — cross-crate semantics tests:
//! guarded vs unguarded FDs, dangling-tuple removal, consistency filtering,
//! and the interaction with each algorithm's final verification.

use fdjoin::core::{naive_join, AccessPaths, Expander, Stats};
use fdjoin::lattice::VarSet;
use fdjoin::query::Query;
use fdjoin::storage::IndexSet;
use fdjoin::storage::{Database, Relation};

/// Q :- R(x,y), S(y,z), T(z,u), K(u,x) with y→z guarded in S.
fn four_cycle() -> (Query, Database) {
    let q = fdjoin::query::examples::four_cycle_key();
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(vec![0, 1], [[1, 10], [2, 20]]));
    db.insert("S", Relation::from_rows(vec![1, 2], [[10, 100], [20, 200]]));
    db.insert("T", Relation::from_rows(vec![2, 3], [[100, 7], [200, 8]]));
    db.insert("K", Relation::from_rows(vec![3, 0], [[7, 1], [8, 2]]));
    (q, db)
}

#[test]
fn guarded_expansion_follows_key() {
    let (q, db) = four_cycle();
    let set = IndexSet::new();
    let paths = AccessPaths::new(&set, &q, &db).unwrap();
    let mut stats = Stats::default();
    let ex = Expander::new(&q, &db, &paths, &mut stats).unwrap();
    // Expanding R over {x,y} adds z via the key y→z in S.
    let rel = db.relation("R").unwrap();
    let expanded = ex.expand_relation(rel, &mut stats);
    assert_eq!(expanded.vars(), &[0, 1, 2]);
    assert!(expanded.contains_row(&[1, 10, 100]));
    assert!(expanded.contains_row(&[2, 20, 200]));
}

#[test]
fn dangling_tuples_dropped_by_expansion() {
    let (q, mut db) = four_cycle();
    // Add an R-tuple whose y has no S-entry: expansion must drop it.
    let mut r = db.relation("R").unwrap().clone();
    r.push_row(&[3, 30]);
    db.insert("R", r);
    let set = IndexSet::new();
    let paths = AccessPaths::new(&set, &q, &db).unwrap();
    let mut stats = Stats::default();
    let ex = Expander::new(&q, &db, &paths, &mut stats).unwrap();
    let expanded = ex.expand_relation(db.relation("R").unwrap(), &mut stats);
    assert_eq!(expanded.len(), 2, "dangling (3,30) removed");
}

#[test]
fn full_query_on_four_cycle() {
    let (q, db) = four_cycle();
    let out = naive_join(&q, &db).unwrap().output;
    assert_eq!(out.len(), 2);
    assert!(out.contains_row(&[1, 10, 100, 7]));
    let ca = fdjoin::core::chain_join(&q, &db).unwrap();
    assert_eq!(ca.output, out);
    let csma = fdjoin::core::csma_join(&q, &db).unwrap();
    assert_eq!(csma.output, out);
}

#[test]
fn udf_consistency_filters_contradictions() {
    // z = f(x,y) where relations also constrain z: contradictory tuples die.
    let mut b = Query::builder();
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("R", &[x, y]).atom("W", &[z]);
    b.fd(&[x, y], &[z]);
    let q = b.build();
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(vec![0, 1], [[1, 1], [2, 2]]));
    // f(x,y) = x + y; W only contains 2, so only (1,1) survives.
    db.insert("W", Relation::from_rows(vec![2], [[2], [5]]));
    db.udfs
        .register(VarSet::from_vars([0, 1]), 2, |v| v[0] + v[1]);
    let out = naive_join(&q, &db).unwrap().output;
    assert_eq!(out.len(), 1);
    assert_eq!(out.row(0), &[1, 1, 2]);
}

#[test]
fn verify_fds_rejects_planted_violations() {
    let (q, db) = four_cycle();
    let set = IndexSet::new();
    let paths = AccessPaths::new(&set, &q, &db).unwrap();
    let mut stats = Stats::default();
    let ex = Expander::new(&q, &db, &paths, &mut stats).unwrap();
    let all = VarSet::full(4);
    // Correct tuple.
    assert!(ex.verify_fds(all, &[1, 10, 100, 7], &mut stats));
    // z value contradicting y→z.
    assert!(!ex.verify_fds(all, &[1, 10, 200, 7], &mut stats));
}

#[test]
#[should_panic(expected = "register UDFs")]
fn missing_udf_backing_panics_loudly() {
    // An unguarded FD without a registered UDF must fail fast, not silently
    // drop tuples.
    let q = fdjoin::query::examples::fig5_udf_product();
    let mut db = Database::new();
    db.insert("R", Relation::from_rows(vec![0], [[1]]));
    db.insert("S", Relation::from_rows(vec![1], [[2]]));
    // no UDF for xy→z
    let _ = naive_join(&q, &db);
}

#[test]
fn expansion_idempotent_on_closed_relations() {
    let (q, db) = four_cycle();
    let set = IndexSet::new();
    let paths = AccessPaths::new(&set, &q, &db).unwrap();
    let mut stats = Stats::default();
    let ex = Expander::new(&q, &db, &paths, &mut stats).unwrap();
    let once = ex.expand_relation(db.relation("R").unwrap(), &mut stats);
    let twice = ex.expand_relation(&once, &mut stats);
    assert_eq!(once, twice);
}
