//! Observability acceptance: span trees from concurrent serving are
//! well-formed, the metrics registry reconciles *exactly* with the
//! engine's own deterministic counters, exports validate, and EXPLAIN /
//! EXPLAIN ANALYZE name everything the planner knew.

use fdjoin::core::{Engine, ExecOptions};
use fdjoin::delta::{ApplyDelta, DeltaBatch, DeltaOptions};
use fdjoin::exec::{Executor, StreamBudget, StreamEnd};
use fdjoin::instances::random_instance;
use fdjoin::obs::{
    export_jsonl, validate_json, validate_jsonl, validate_prometheus, Observer, SpanKind,
    SpanRecord,
};
use fdjoin::query::examples;
use fdjoin::storage::{Database, Relation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

fn fig4_dbs(count: usize, rows: usize) -> Vec<Database> {
    let q = examples::fig4_query();
    let mut rng = StdRng::seed_from_u64(99);
    (0..count)
        .map(|i| random_instance(&q, &mut rng, rows, 100 - (i as u32 % 4) * 5))
        .collect()
}

fn triangle_db() -> Database {
    let mut db = Database::new();
    db.insert(
        "R",
        Relation::from_rows(vec![0, 1], [[1, 2], [1, 3], [2, 3]]),
    );
    db.insert("S", Relation::from_rows(vec![1, 2], [[2, 3], [3, 1]]));
    db.insert("T", Relation::from_rows(vec![2, 0], [[3, 1], [1, 1]]));
    db
}

/// Structural invariants of a drained span set: unique ids, every parent
/// present (no orphans), children fully contained in their parents'
/// intervals (parents close after children).
fn assert_well_formed(spans: &[SpanRecord]) {
    let mut by_id: HashMap<u64, &SpanRecord> = HashMap::new();
    for s in spans {
        assert!(
            by_id.insert(s.id, s).is_none(),
            "duplicate span id {}",
            s.id
        );
        assert!(
            s.end_ns >= s.start_ns,
            "span {} ends before it starts",
            s.id
        );
    }
    for s in spans {
        if let Some(p) = s.parent {
            let parent = by_id
                .get(&p)
                .unwrap_or_else(|| panic!("span {} has unrecorded parent {p}", s.id));
            assert!(
                parent.end_ns >= s.end_ns,
                "parent {} ({}) closed before child {} ({})",
                parent.id,
                parent.kind.name(),
                s.id,
                s.kind.name()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Acceptance: one submit on fig4 = one coherent span tree.
// ---------------------------------------------------------------------------

#[test]
fn one_submit_yields_one_well_formed_span_tree() {
    let obs = Observer::enabled();
    let q = examples::fig4_query();
    let dbs = Arc::new(fig4_dbs(3, 400));

    let engine = Engine::new().observe(obs.clone());
    let exec = Executor::with_threads(2).observe(obs.clone());
    {
        let mut request = obs.span(SpanKind::Request, "test request");
        let prepared = Arc::new(engine.prepare(&q));
        let batch = exec.submit(&prepared, &dbs, &ExecOptions::new()).wait();
        assert_eq!(batch.stats.succeeded, 3);
        request.field("databases", batch.stats.databases);
    }
    let spans = obs.drain_spans();
    assert_eq!(obs.dropped_spans(), 0, "ring did not overflow");
    assert_well_formed(&spans);

    // Exactly one root — the request — and everything else reachable
    // from it: prepare and submit beneath the request, batches beneath
    // the submit, solves beneath the batches, index builds beneath solves.
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "single tree");
    assert_eq!(roots[0].kind, SpanKind::Request);
    let count = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count();
    assert_eq!(count(SpanKind::Prepare), 1);
    assert_eq!(count(SpanKind::Submit), 1);
    assert_eq!(count(SpanKind::Batch), 3, "one batch span per database");
    assert_eq!(count(SpanKind::Solve), 3, "one solve span per database");
    assert!(count(SpanKind::IndexBuild) > 0, "index builds traced");
    for s in &spans {
        let parent_kind = s
            .parent
            .map(|p| spans.iter().find(|x| x.id == p).expect("no orphans").kind);
        match s.kind {
            SpanKind::Prepare | SpanKind::Submit => {
                assert_eq!(parent_kind, Some(SpanKind::Request))
            }
            SpanKind::Batch => assert_eq!(parent_kind, Some(SpanKind::Submit)),
            SpanKind::Solve => assert_eq!(parent_kind, Some(SpanKind::Batch)),
            SpanKind::IndexBuild => assert_eq!(parent_kind, Some(SpanKind::Solve)),
            _ => {}
        }
    }

    // The solve spans carry the decision record.
    for s in spans.iter().filter(|s| s.kind == SpanKind::Solve) {
        assert!(s.field("algorithm").is_some());
        assert!(s.field("auto_reason").is_some());
        assert!(s.field("work").is_some());
    }

    // Both exports of this tree validate.
    let jsonl = export_jsonl(&spans);
    assert_eq!(validate_jsonl(&jsonl).unwrap(), spans.len());
}

// ---------------------------------------------------------------------------
// Acceptance: registry totals reconcile exactly with the engine's own
// deterministic counters.
// ---------------------------------------------------------------------------

#[test]
fn registry_reconciles_with_stats_and_prep_stats() {
    let obs = Observer::enabled();
    let q = examples::fig4_query();
    let dbs = fig4_dbs(4, 350);

    let engine = Engine::new().observe(obs.clone());
    let prepared = engine.prepare(&q);
    let mut work = 0u64;
    let mut probes = 0u64;
    let mut output = 0u64;
    let mut builds = 0u64;
    let mut hits = 0u64;
    let mut runs = 0u64;
    for db in &dbs {
        let r = prepared.execute(db, &ExecOptions::new()).unwrap();
        work += r.stats.work();
        probes += r.stats.probes;
        output += r.stats.output_tuples;
        builds += r.stats.index_builds;
        hits += r.stats.index_hits;
        runs += 1;
    }

    let m = obs.metrics();
    let c = |name: &str| m.counter_value(name, &[]);
    assert_eq!(c("fdjoin_prepares_total"), 1);
    assert_eq!(c("fdjoin_work_total"), work);
    assert_eq!(c("fdjoin_probes_total"), probes);
    assert_eq!(c("fdjoin_output_tuples_total"), output);
    assert_eq!(c("fdjoin_index_builds_total"), builds);
    assert_eq!(c("fdjoin_index_hits_total"), hits);
    // Executions split by algorithm sums to the run count, and the
    // latency/work histograms saw exactly one observation per run.
    let by_alg: u64 = [
        "chain",
        "sma",
        "csma",
        "generic-join",
        "binary-join",
        "naive",
    ]
    .iter()
    .map(|a| m.counter_value("fdjoin_executions_total", &[("algorithm", a)]))
    .sum();
    assert_eq!(by_alg, runs);
    assert_eq!(m.histogram("fdjoin_work", &[]).count(), runs);
    assert_eq!(m.histogram("fdjoin_solve_latency_ns", &[]).count(), runs);
    // Every execution fed the estimate-calibration loop.
    assert_eq!(
        m.histogram("fdjoin_estimate_abs_error_millilog2", &[])
            .count(),
        runs
    );
    assert!(m.estimate_calibration_log2().is_some());
    // Plan-solve events were counted at exactly the PrepStats bump sites.
    assert_eq!(
        c("fdjoin_plan_solves_total"),
        prepared.prep_stats().solves()
    );

    // Both registry exports validate.
    validate_prometheus(&m.to_prometheus()).unwrap();
    validate_json(&m.to_json()).unwrap();
}

// ---------------------------------------------------------------------------
// Concurrency stress: many submits racing on a small pool still produce
// well-formed trees, and per-submit subtrees stay disjoint.
// ---------------------------------------------------------------------------

#[test]
fn stressed_executor_produces_well_formed_trees() {
    let obs = Observer::enabled();
    let q = examples::triangle();
    let mut rng = StdRng::seed_from_u64(3);
    let dbs = Arc::new(
        (0..12)
            .map(|_| random_instance(&q, &mut rng, 200, 95))
            .collect::<Vec<_>>(),
    );

    let engine = Engine::new().observe(obs.clone());
    let prepared = Arc::new(engine.prepare(&q));
    let exec = Executor::with_threads(4).observe(obs.clone());
    let handles: Vec<_> = (0..4)
        .map(|_| exec.submit(&prepared, &dbs, &ExecOptions::new()))
        .collect();
    for h in handles {
        assert_eq!(h.wait().stats.failed, 0);
    }

    let spans = obs.drain_spans();
    assert_eq!(obs.dropped_spans(), 0);
    assert_well_formed(&spans);
    let submits: Vec<u64> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Submit)
        .map(|s| s.id)
        .collect();
    assert_eq!(submits.len(), 4);
    let batches: Vec<&SpanRecord> = spans.iter().filter(|s| s.kind == SpanKind::Batch).collect();
    assert_eq!(batches.len(), 4 * 12);
    let submit_set: HashSet<u64> = submits.iter().copied().collect();
    for b in &batches {
        assert!(
            submit_set.contains(&b.parent.expect("batch spans have parents")),
            "every batch hangs off one of the submits"
        );
    }
    assert_eq!(
        spans.iter().filter(|s| s.kind == SpanKind::Solve).count(),
        4 * 12
    );
}

// ---------------------------------------------------------------------------
// Parallel-solve stress: many concurrent 8-way solves with tiny sub-ranges
// — no deadlock, no dropped sub-range (outputs stay byte-identical to the
// sequential run), and every solve_part span parents under a solve span in
// a well-formed tree.
// ---------------------------------------------------------------------------

#[test]
fn stressed_parallel_solves_stay_deterministic_and_well_parented() {
    let obs = Observer::enabled();
    let q = examples::triangle();
    let mut rng = StdRng::seed_from_u64(17);
    // Small instances: 8-way fan-out over a handful of root children makes
    // the sub-ranges tiny, maximizing scheduling churn per unit work.
    let dbs = Arc::new(
        (0..8)
            .map(|_| random_instance(&q, &mut rng, 60, 90))
            .collect::<Vec<_>>(),
    );

    let engine = Engine::new().observe(obs.clone());
    let prepared = Arc::new(engine.prepare(&q));
    // Sequential references, traced through a separate observer so the
    // stressed observer sees only the parallel runs.
    let reference: Vec<_> = {
        let plain = Arc::new(Engine::new().prepare(&q));
        dbs.iter()
            .map(|db| {
                plain
                    .execute(db, &ExecOptions::new().parallelism(1))
                    .unwrap()
            })
            .collect()
    };

    // 3 concurrent submits × 8 databases × 8-way solves on a 4-thread pool:
    // worker threads fan out scoped sub-range tasks from inside pool jobs.
    let exec = Executor::with_threads(4).observe(obs.clone());
    let opts = ExecOptions::new().parallelism(8);
    let handles: Vec<_> = (0..3)
        .map(|_| exec.submit(&prepared, &dbs, &opts))
        .collect();
    for h in handles {
        let batch = h.wait();
        assert_eq!(batch.stats.failed, 0, "no solve deadlocked or died");
        for (r, seq) in batch.results.iter().zip(&reference) {
            let r = r.as_ref().unwrap();
            assert_eq!(r.output, seq.output, "a dropped sub-range changes output");
            assert_eq!(r.stats.deterministic(), seq.stats.deterministic());
        }
    }

    let spans = obs.drain_spans();
    assert_eq!(obs.dropped_spans(), 0);
    assert_well_formed(&spans);
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let parts: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::SolvePart)
        .collect();
    assert!(!parts.is_empty(), "8-way solves must emit solve_part spans");
    for p in &parts {
        let parent = by_id[&p.parent.expect("solve_part spans have parents")];
        assert_eq!(
            parent.kind,
            SpanKind::Solve,
            "solve_part parents under its solve, not the worker's span"
        );
        assert!(p.field("items").is_some(), "solve_part records its size");
    }
    // No dropped sub-range in the trace either: a solve may fan out several
    // times (per chain level / per atom), but within each fan-out of `t`
    // parts, every index 1..=t must appear — and equally often across
    // repeated fan-outs of the same width.
    let mut fanouts: HashMap<(u64, usize), HashMap<usize, usize>> = HashMap::new();
    for p in &parts {
        let (i, t) = p
            .label
            .strip_prefix("part ")
            .and_then(|l| l.split_once('/'))
            .map(|(i, t)| (i.parse().unwrap(), t.parse().unwrap()))
            .expect("solve_part labels are `part i/total`");
        *fanouts
            .entry((p.parent.unwrap(), t))
            .or_default()
            .entry(i)
            .or_default() += 1;
    }
    for ((solve, t), seen) in fanouts {
        let runs = seen.values().copied().max().unwrap();
        for i in 1..=t {
            assert_eq!(
                seen.get(&i).copied().unwrap_or(0),
                runs,
                "solve {solve}: part {i}/{t} dropped"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming + delta layers emit through the same observer.
// ---------------------------------------------------------------------------

#[test]
fn stream_and_delta_metrics_flow_through_one_observer() {
    let obs = Observer::enabled();
    let q = examples::triangle();
    let engine = Engine::new().observe(obs.clone());
    let prepared = Arc::new(engine.prepare(&q));
    let db = Arc::new(triangle_db());

    // A row-budgeted stream: one delivered row, ended by the budget. The
    // executor has no observer of its own — submissions fall back to the
    // prepared query's.
    let exec = Executor::with_threads(2);
    let outcome = exec
        .submit_stream(&prepared, &db, StreamBudget::new().max_rows(1))
        .wait()
        .unwrap();
    assert_eq!(outcome.end, StreamEnd::RowBudget);
    assert_eq!(outcome.rows.len(), 1);
    let m = obs.metrics();
    assert_eq!(m.counter_value("fdjoin_stream_rows_total", &[]), 1);
    assert_eq!(m.counter_value("fdjoin_stream_pauses_total", &[]), 1);
    assert_eq!(
        m.counter_value("fdjoin_stream_endings_total", &[("end", "row-budget")]),
        1
    );
    assert_eq!(m.histogram("fdjoin_first_row_latency_ns", &[]).count(), 1);

    // Display satellites: one-line summaries render non-empty.
    assert!(outcome.to_string().contains("end=row-budget"));
    assert!(outcome.stats.to_string().contains("work="));

    // A delta batch through a materialized view.
    let mut view = prepared
        .materialize(triangle_db(), DeltaOptions::new())
        .unwrap();
    let ds = view
        .apply_delta(&DeltaBatch::new().insert("R", [3, 1]))
        .unwrap();
    assert_eq!(m.counter_value("fdjoin_delta_batches_total", &[]), 1);
    assert!(ds.to_string().contains("batches=1"));

    let spans = obs.drain_spans();
    assert_well_formed(&spans);
    let kinds: HashSet<&str> = spans.iter().map(|s| s.kind.name()).collect();
    for k in ["submit", "batch", "stream_advance", "delta_apply"] {
        assert!(kinds.contains(k), "missing span kind {k}");
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE name the decision, the bounds, the estimate,
// and the enumeration class.
// ---------------------------------------------------------------------------

#[test]
fn explain_analyze_names_everything() {
    let q = examples::fig4_query();
    let db = fig4_dbs(1, 400).pop().unwrap();
    let prepared = Engine::new().prepare(&q);

    let plan = prepared.explain(&db).unwrap();
    assert!(plan.analyze.is_none());
    let text = plan.to_string();
    // The auto decision and its reason, verbatim.
    assert!(text.contains(&plan.decision.algorithm.to_string()));
    assert!(text.contains(&plan.decision.reason.to_string()));
    // Both worst-case bounds plus the measured estimate.
    assert!(text.contains("bounds(log2): chain="));
    assert!(text.contains(" llp="));
    assert!(text.contains("estimate(log2): avg="));
    // The enumeration class.
    assert!(text.contains(&plan.enumeration.to_string()));

    let analyzed = prepared.explain_analyze(&db).unwrap();
    let a = analyzed.analyze.as_ref().expect("analysis attached");
    let report = analyzed.to_string();
    assert!(report.contains("ANALYZE"));
    assert!(report.contains(&a.algorithm.to_string()));
    assert!(a.rows > 0);
    assert!(a.span_tree.contains("solve"), "trace rendered inline");
    // ANALYZE ran on warm plans: the window shows zero new solves.
    assert_eq!(a.prep_window.solves(), 0);

    // Consistency with a plain execution under default options.
    let r = prepared.execute(&db, &ExecOptions::new()).unwrap();
    assert_eq!(r.algorithm_used, a.algorithm);
    assert_eq!(r.output.len(), a.rows);
}
