//! Bound soundness: on every instance we can generate, the measured output
//! size must respect GLVV ≤ chain-bound and GLVV ≤ AGM(Q⁺) ≤ AGM, and the
//! actual output must fit under GLVV.

use fdjoin::bigint::Rational;
use fdjoin::bounds::chain::best_chain_bound;
use fdjoin::bounds::llp::solve_llp;
use fdjoin::core::naive_join;
use fdjoin::instances::random_instance;
use fdjoin::query::{examples, Query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn log_sizes(q: &Query, db: &fdjoin::storage::Database) -> Vec<Rational> {
    q.atoms()
        .iter()
        .map(|a| Rational::log2_approx(db.relation(&a.name).unwrap().len().max(1) as u64, 16))
        .collect()
}

fn check_bound_order(q: &Query, db: &fdjoin::storage::Database) {
    let pres = q.lattice_presentation();
    let logs = log_sizes(q, db);
    let glvv = solve_llp(&pres.lattice, &pres.inputs, &logs).value;

    // Output within GLVV.
    let out = naive_join(q, db).unwrap().output;
    let out_log = Rational::log2_approx(out.len().max(1) as u64, 16);
    // log2_approx rounds up by < 2^-16; tolerate that slack.
    let slack = fdjoin::bigint::rat(1, 4096);
    assert!(
        out_log <= &glvv + &slack,
        "{}: output 2^{} exceeds GLVV 2^{}",
        q.display_body(),
        out_log.to_f64(),
        glvv.to_f64()
    );

    // GLVV ≤ chain bound (when a finite chain exists).
    if let Some(cb) = best_chain_bound(&pres.lattice, &pres.inputs, &logs) {
        assert!(
            glvv <= cb.log_bound,
            "{}: GLVV above chain bound",
            q.display_body()
        );
    }

    // GLVV ≤ AGM(Q⁺) ≤ AGM (when covers exist).
    let agm = fdjoin::bounds::agm::agm_log_bound(q, &logs);
    let agm_plus = fdjoin::bounds::agm::agm_closure_log_bound(q, &logs);
    if let (Some(a), Some(ap)) = (agm, agm_plus) {
        assert!(
            ap.value <= a.value,
            "{}: AGM(Q⁺) above AGM",
            q.display_body()
        );
        assert!(glvv <= ap.value, "{}: GLVV above AGM(Q⁺)", q.display_body());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn bound_order_on_random_instances(seed in any::<u64>(), rows in 4usize..32) {
        for q in [
            examples::triangle(),
            examples::fig1_udf(),
            examples::four_cycle_key(),
            examples::composite_key(),
            examples::m3_query(),
            examples::simple_fd_path(),
            examples::fig4_query(),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let db = random_instance(&q, &mut rng, rows, 75);
            check_bound_order(&q, &db);
        }
    }
}

#[test]
fn bound_order_on_worst_cases() {
    use fdjoin::bigint::rat;
    let q = examples::fig4_query();
    let db = fdjoin::instances::normal_worst_case(&q, &vec![rat(3, 1); 4], &rat(4, 1)).unwrap();
    check_bound_order(&q, &db);
    let q = examples::fig1_udf();
    check_bound_order(&q, &fdjoin::instances::fig1_tight(3));
    check_bound_order(&q, &fdjoin::instances::fig1_adversarial(12));
    let q = examples::m3_query();
    check_bound_order(&q, &fdjoin::instances::m3_parity(6));
}

#[test]
fn glvv_is_monotone_in_cardinalities() {
    use fdjoin::bigint::rat;
    let q = examples::fig1_udf();
    let pres = q.lattice_presentation();
    let mut prev = Rational::zero();
    for n in 1..=6 {
        let v = solve_llp(&pres.lattice, &pres.inputs, &vec![rat(n, 1); 3]).value;
        assert!(v >= prev, "GLVV not monotone at n={n}");
        prev = v;
    }
    // And exactly (3/2)·n throughout.
    assert_eq!(prev, rat(9, 1));
}
