//! End-to-end verification of the paper's quantitative claims, one test per
//! experiment row of `EXPERIMENTS.md` (small-scale versions; the bench
//! harness runs the full sweeps).

use fdjoin::bigint::{rat, Rational};
use fdjoin::bounds::chain::best_chain_bound;
use fdjoin::bounds::llp::solve_llp;
use fdjoin::bounds::normal::is_normal_lattice;
use fdjoin::bounds::smproof::{search_good_sm_proof, search_sm_proof};
use fdjoin::core::{chain_join, csma_join, generic_join, naive_join};
use fdjoin::query::examples;

/// E1: the Fig. 1 UDF query — GLVV = N^{3/2}; chain algorithm does
/// ~N^{3/2} work on the adversarial instance while FD-oblivious GJ does
/// Ω(N²).
#[test]
fn e1_chain_beats_generic_join_on_adversarial_instance() {
    let q = examples::fig1_udf();
    let (n1, n2) = (64u64, 256u64);
    let work = |n: u64| {
        let db = fdjoin::instances::fig1_adversarial(n);
        let ca = chain_join(&q, &db).unwrap();
        let gj = generic_join(&q, &db).unwrap();
        assert_eq!(ca.output, gj.output);
        (ca.stats.work(), gj.stats.work())
    };
    let (ca1, gj1) = work(n1);
    let (ca2, gj2) = work(n2);
    // Exponent estimates over a 4× size increase.
    let ca_exp = ((ca2 as f64) / (ca1 as f64)).log2() / 2.0;
    let gj_exp = ((gj2 as f64) / (gj1 as f64)).log2() / 2.0;
    assert!(
        ca_exp < 1.75,
        "chain algorithm exponent ~1.5, got {ca_exp:.2}"
    );
    assert!(gj_exp > 1.75, "generic join exponent ~2, got {gj_exp:.2}");
}

/// E1 (bound side): output on the tight instance is exactly N^{3/2}.
#[test]
fn e1_tight_instance_attains_bound() {
    let q = examples::fig1_udf();
    for s in [2u64, 4] {
        let db = fdjoin::instances::fig1_tight(s);
        let ca = chain_join(&q, &db).unwrap();
        assert_eq!(ca.output.len() as u64, s * s * s);
    }
}

/// E3: LLP on a Boolean algebra equals the AGM bound for arbitrary
/// cardinalities (Sec. 3.3).
#[test]
fn e3_llp_equals_agm_on_boolean_algebra() {
    let q = examples::triangle();
    let pres = q.lattice_presentation();
    for logs in [[3i64, 3, 3], [1, 5, 9], [2, 2, 8], [0, 4, 4]] {
        let lr: Vec<Rational> = logs.iter().map(|&v| rat(v, 1)).collect();
        let llp = solve_llp(&pres.lattice, &pres.inputs, &lr);
        let agm = fdjoin::bounds::agm::agm_log_bound(&q, &lr).unwrap();
        assert_eq!(llp.value, agm.value, "sizes {logs:?}");
    }
}

/// E4: the closure technique works for simple keys and fails for composite
/// keys (Sec. 2).
#[test]
fn e4_closure_bound_vs_glvv() {
    // Composite key: GLVV = N² but AGM(Q⁺) = M.
    let q = examples::composite_key();
    let logs = vec![rat(5, 1), rat(5, 1), rat(30, 1)];
    let agm_plus = fdjoin::bounds::agm::agm_closure_log_bound(&q, &logs).unwrap();
    let pres = q.lattice_presentation();
    let glvv = solve_llp(&pres.lattice, &pres.inputs, &logs).value;
    assert_eq!(agm_plus.value, rat(30, 1));
    assert_eq!(glvv, rat(10, 1));
    assert!(glvv < agm_plus.value);
}

/// E5: simple FDs ⇒ distributive lattice ⇒ tight chain bound = LLP.
#[test]
fn e5_simple_fds_chain_equals_llp() {
    let q = examples::simple_fd_path();
    let pres = q.lattice_presentation();
    assert!(pres.lattice.is_distributive());
    for logs in [[4i64, 4, 4], [2, 6, 3]] {
        let lr: Vec<Rational> = logs.iter().map(|&v| rat(v, 1)).collect();
        let llp = solve_llp(&pres.lattice, &pres.inputs, &lr).value;
        let chain = best_chain_bound(&pres.lattice, &pres.inputs, &lr)
            .unwrap()
            .log_bound;
        assert_eq!(llp, chain, "sizes {logs:?}");
    }
}

/// E6: M3 — parity instance attains the N² GLVV bound; the co-atomic cover
/// bound N^{3/2} is invalid; the lattice is non-normal.
#[test]
fn e6_m3_parity() {
    let q = examples::m3_query();
    let pres = q.lattice_presentation();
    assert!(!is_normal_lattice(&pres.lattice, &pres.inputs));
    let n = 8u64;
    let db = fdjoin::instances::m3_parity(n);
    let out = naive_join(&q, &db).unwrap().output;
    assert_eq!(out.len() as u64, n * n);
    // N² > N^{3/2}: the co-atomic cover bound is genuinely violated.
    assert!((out.len() as f64) > (n as f64).powf(1.5));
    // CSMA computes it within the N² budget.
    let csma = csma_join(&q, &db).unwrap();
    assert_eq!(csma.output.len() as u64, n * n);
}

/// E7: Fig 4 — chain bound 3/2 strictly above LLP/SM bound 4/3; a good
/// SM-proof exists; the worst case attains N^{4/3}.
#[test]
fn e7_fig4_gap_and_tightness() {
    let q = examples::fig4_query();
    let pres = q.lattice_presentation();
    let logs = vec![rat(3, 1); 4];
    let chain = best_chain_bound(&pres.lattice, &pres.inputs, &logs)
        .unwrap()
        .log_bound;
    let llp = solve_llp(&pres.lattice, &pres.inputs, &logs).value;
    assert_eq!(chain, rat(9, 2)); // (3/2)·3
    assert_eq!(llp, rat(4, 1)); // (4/3)·3
    let multiset: Vec<(usize, u64)> = pres.inputs.iter().map(|&e| (e, 1)).collect();
    assert!(search_good_sm_proof(&pres.lattice, &multiset, 3).is_some());
    let db = fdjoin::instances::normal_worst_case(&q, &logs, &llp).unwrap();
    let out = naive_join(&q, &db).unwrap().output;
    assert_eq!(out.len(), 16); // 2^4 = N^{4/3} with N = 8.
}

/// E8: Fig 5 — every maximal chain has an isolated vertex; the Cor. 5.9
/// chain works and the chain algorithm computes the N² product.
#[test]
fn e8_fig5_good_chain() {
    let q = examples::fig5_udf_product();
    let mut db = fdjoin::storage::Database::new();
    let rows: Vec<[u64; 1]> = (0..10).map(|i| [i]).collect();
    db.insert(
        "R",
        fdjoin::storage::Relation::from_rows(vec![0], rows.clone()),
    );
    db.insert("S", fdjoin::storage::Relation::from_rows(vec![1], rows));
    db.udfs
        .register(fdjoin::lattice::VarSet::from_vars([0, 1]), 2, |v| {
            v[0] * 100 + v[1]
        });
    let ca = chain_join(&q, &db).unwrap();
    assert_eq!(ca.output.len(), 100);
    // The selected chain is non-maximal (3 elements: 0̂ ≺ atom ≺ 1̂).
    let chain = ca.chain().expect("chain algorithm ran");
    assert!(chain.elems.len() <= 3, "chain {:?}", chain.elems);
}

/// E12: Fig 9 — no SM proof at d = 2, but CSMA handles the query; the
/// lattice is normal and its worst case attains N^{3/2}.
#[test]
fn e12_fig9_needs_csma() {
    let q = examples::fig9_query();
    let pres = q.lattice_presentation();
    let multiset: Vec<(usize, u64)> = pres.inputs.iter().map(|&e| (e, 1)).collect();
    assert!(search_sm_proof(&pres.lattice, &multiset, 2).is_none());
    assert!(is_normal_lattice(&pres.lattice, &pres.inputs));
    let logs = vec![rat(2, 1); 3];
    let db = fdjoin::instances::normal_worst_case(&q, &logs, &rat(3, 1)).unwrap();
    let csma = csma_join(&q, &db).unwrap();
    assert_eq!(csma.output.len(), 8);
    assert_eq!(csma.predicted_log_bound, Some(rat(3, 1)));
}

/// E13/E15: the lattice classification of Fig. 10 — inclusion chain and
/// strictness witnesses.
#[test]
fn e13_fig10_classification() {
    use fdjoin::lattice::build;
    // Boolean ⊂ distributive: all Boolean algebras distributive.
    assert!(build::boolean(3).is_distributive());
    // Simple FDs ⇒ distributive (Prop. 3.2) — witnessed by simple_fd_path.
    assert!(examples::simple_fd_path()
        .lattice_presentation()
        .lattice
        .is_distributive());
    // Distributive ⊊ normal: Fig 1's lattice is normal but not distributive.
    let fig1 = examples::fig1_udf().lattice_presentation();
    assert!(!fig1.lattice.is_distributive());
    assert!(is_normal_lattice(&fig1.lattice, &fig1.inputs));
    // N5 normal, M3 not (E14/E15).
    let n5 = build::n5();
    let e = |s: &str| n5.elems().find(|&x| n5.name(x) == s).unwrap();
    assert!(is_normal_lattice(&n5, &[e("a"), e("b"), e("c")]));
    let m3 = build::m3();
    assert!(!is_normal_lattice(&m3, &m3.atoms()));
}

/// Chain-bound tightness boundary: tight on distributive lattices and on
/// the Fig. 6 chain, not tight on Fig. 4.
#[test]
fn chain_tightness_boundary() {
    use fdjoin::bounds::chain::Chain;
    // Fig 6 = Fig 1 lattice with chain 0̂ ≺ y ≺ yz ≺ 1̂: condition (15) holds.
    let q = examples::fig1_udf();
    let pres = q.lattice_presentation();
    let lat = &pres.lattice;
    let y = q.var_id("y").unwrap();
    let z = q.var_id("z").unwrap();
    let vs = |v: &[u32]| fdjoin::lattice::VarSet::from_vars(v.iter().copied());
    let chain = Chain::new(
        lat,
        vec![
            lat.bottom(),
            lat.elem_of_set(vs(&[y])).unwrap(),
            lat.elem_of_set(vs(&[y, z])).unwrap(),
            lat.top(),
        ],
    );
    assert!(chain.tightness_condition(lat));
    // Fig 4: no candidate chain matches the LLP value (Example 5.18).
    let q4 = examples::fig4_query();
    let p4 = q4.lattice_presentation();
    let logs = vec![rat(6, 1); 4];
    let cb = best_chain_bound(&p4.lattice, &p4.inputs, &logs)
        .unwrap()
        .log_bound;
    let llp = solve_llp(&p4.lattice, &p4.inputs, &logs).value;
    assert!(cb > llp);
}
