//! Differential testing of intra-query parallelism: for random instances
//! of the example queries (including the paper's Fig. 4 and Fig. 9
//! families), every algorithm run at parallelism 1, 2, and 8 must yield
//! byte-identical output, identical [`Stats::deterministic`] totals, and —
//! under [`Algorithm::Auto`] — the same [`AutoDecision`] as the sequential
//! run. Outputs are sorted + deduplicated relations, so `Relation`
//! equality *is* the byte comparison.

use fdjoin::core::{Algorithm, Engine, ExecOptions, JoinError, JoinResult};
use fdjoin::instances::random_instance;
use fdjoin::query::{examples, Query};
use fdjoin::storage::Database;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALGORITHMS: [Algorithm; 6] = [
    Algorithm::Chain,
    Algorithm::Sma,
    Algorithm::Csma,
    Algorithm::GenericJoin,
    Algorithm::BinaryJoin,
    Algorithm::Naive,
];

const PARALLELISMS: [usize; 3] = [1, 2, 8];

fn queries() -> Vec<Query> {
    vec![
        examples::triangle(),
        examples::fig1_udf(),
        examples::four_cycle_key(),
        examples::composite_key(),
        examples::simple_fd_path(),
        examples::fig4_query(),
        examples::fig9_query(),
    ]
}

/// Run `q` with `opts`, treating a planner refusal (Chain/SMA on bad
/// lattices) as "skip" — refusal must not depend on parallelism, which the
/// caller checks by skipping only when the sequential run also refused.
fn run(q: &Query, db: &Database, opts: &ExecOptions) -> Option<JoinResult> {
    match Engine::new().execute(q, db, opts) {
        Ok(r) => Some(r),
        Err(JoinError::NoGoodChain | JoinError::NoGoodProof) => None,
        Err(e) => panic!("{}: {e}", q.display_body()),
    }
}

/// Check one (query, instance, algorithm): the sequential run is the
/// reference; every parallelism level must reproduce it exactly. Returns
/// whether the algorithm accepted the query.
fn check_algorithm(q: &Query, db: &Database, alg: Algorithm, seed: u64) -> bool {
    let seq = run(q, db, &ExecOptions::new().algorithm(alg).parallelism(1));
    for p in PARALLELISMS {
        let par = run(q, db, &ExecOptions::new().algorithm(alg).parallelism(p));
        match (&seq, par) {
            (Some(seq), Some(par)) => {
                assert_eq!(
                    par.output,
                    seq.output,
                    "{alg} on {} at parallelism {p} changed the output (seed {seed})",
                    q.display_body()
                );
                assert_eq!(
                    par.stats.deterministic(),
                    seq.stats.deterministic(),
                    "{alg} on {} at parallelism {p} changed deterministic stats (seed {seed})",
                    q.display_body()
                );
            }
            (None, None) => {}
            (seq, par) => panic!(
                "{alg} on {} refused at one parallelism only (seq ok: {}, p={p} ok: {}, seed {seed})",
                q.display_body(),
                seq.is_some(),
                par.is_some()
            ),
        }
    }
    seq.is_some()
}

/// Under [`Algorithm::Auto`], the planner's decision record must be
/// byte-identical at every parallelism level — the task count is resolved
/// strictly after the algorithm choice.
fn check_auto(q: &Query, db: &Database, seed: u64) {
    let seq = run(q, db, &ExecOptions::new().parallelism(1)).expect("auto never refuses");
    let seq_auto = seq.auto.as_ref().expect("auto records a decision");
    for p in PARALLELISMS {
        let par = run(q, db, &ExecOptions::new().parallelism(p)).expect("auto never refuses");
        assert_eq!(
            par.auto.as_ref(),
            Some(seq_auto),
            "auto on {} decided differently at parallelism {p} (seed {seed})",
            q.display_body()
        );
        assert_eq!(par.output, seq.output);
        assert_eq!(par.stats.deterministic(), seq.stats.deterministic());
    }
}

proptest! {
    // 6 cases × 7 queries × (6 algorithms + auto) × {1,2,8}-way runs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallelism_is_observationally_sequential(
        seed in any::<u64>(),
        rows in 6usize..16,
    ) {
        let mut accepted = 0usize;
        for q in queries() {
            let mut rng = StdRng::seed_from_u64(seed);
            let db = random_instance(&q, &mut rng, rows, 80);
            for alg in ALGORITHMS {
                accepted += check_algorithm(&q, &db, alg, seed) as usize;
            }
            check_auto(&q, &db, seed);
        }
        // Vacuous-green guard: Chain/SMA may refuse some lattices, but
        // CSMA, Generic-Join, binary join, and naive never do.
        prop_assert!(accepted >= 28, "only {accepted} (query, algorithm) pairs ran");
    }
}

/// Larger single-seed instances: enough rows that 2- and 8-way runs really
/// fan out (the proptest instances can be small enough that a block merge
/// degenerates to one block). Sizes are per query: the quadratic baselines
/// (naive, binary join) stay tractable on the 7-atom Fig. 9 query only at
/// small row counts.
#[test]
fn parallel_runs_match_on_larger_instances() {
    let cases = [
        (examples::triangle(), 300),
        (examples::fig4_query(), 80),
        (examples::fig9_query(), 24),
    ];
    for (q, rows) in cases {
        let mut rng = StdRng::seed_from_u64(0xF149);
        let db = random_instance(&q, &mut rng, rows, 85);
        for alg in ALGORITHMS {
            check_algorithm(&q, &db, alg, 0);
        }
        check_auto(&q, &db, 0);
    }
}
