//! Streaming through the facade: the Carmeli–Kröll enumeration class is
//! recorded on every Auto decision, and the cursor layer composes with the
//! engine's prepared queries end to end.

use fdjoin::core::{Algorithm, Engine, ExecOptions};
use fdjoin::query::{examples, EnumerationClass, Query};
use fdjoin::stream::ResultStream;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn auto_class(q: &Query, seed: u64) -> EnumerationClass {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = fdjoin::instances::random_instance(q, &mut rng, 12, 80);
    let r = Engine::new()
        .execute(q, &db, &ExecOptions::new().algorithm(Algorithm::Auto))
        .expect("auto execution");
    let decision = r.auto.expect("auto runs record their decision");
    decision.enumeration
}

/// The acceptance criterion: an actual Auto execution reports
/// constant-delay for an acyclic query and not-constant-delay for a query
/// that provably has no constant-delay enumeration (the triangle, cyclic
/// even under its FD closure).
#[test]
fn auto_decisions_report_enumeration_class() {
    let cd = auto_class(&examples::simple_fd_path(), 1);
    assert_eq!(cd, EnumerationClass::ConstantDelay);
    assert!(cd.is_constant_delay());

    let ncd = auto_class(&examples::triangle(), 2);
    assert_eq!(ncd, EnumerationClass::NotConstantDelay);
    assert!(!ncd.is_constant_delay());

    // The interesting middle class: the triangle again, but an FD y→z
    // makes its closure acyclic — constant delay *because of* the FDs.
    let mut b = Query::builder();
    let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
    b.atom("R", &[x, y]).atom("S", &[y, z]).atom("T", &[z, x]);
    b.fd(&[y], &[z]);
    let via_fds = auto_class(&b.build(), 3);
    assert_eq!(via_fds, EnumerationClass::ConstantDelayViaFds);
    assert!(via_fds.is_constant_delay());
}

/// The recorded class is data-independent: every database, and every
/// prepared execution, reports the same class the prepared query exposes.
#[test]
fn enumeration_class_is_stable_across_data() {
    let q = examples::fig4_query();
    let prepared = Engine::new().prepare(&q);
    assert_eq!(
        prepared.enumeration_class(),
        EnumerationClass::NotConstantDelay
    );
    for seed in [10u64, 11] {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = fdjoin::instances::random_instance(&q, &mut rng, 15, 75);
        let r = prepared.execute(&db, &ExecOptions::new()).expect("execute");
        assert_eq!(
            r.auto.expect("auto decision").enumeration,
            prepared.enumeration_class()
        );
        // The stream layer reports the same class it enumerates under.
        let s = ResultStream::open(&prepared, &db).expect("open");
        assert_eq!(s.enumeration_class(), prepared.enumeration_class());
    }
}
